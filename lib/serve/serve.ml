type config = {
  lru_capacity : int;
  queue_capacity : int;
  workers : int;
  retry_after_ms : int;
  ctx : Ctx.t;
}

let default_config =
  {
    lru_capacity = 32;
    queue_capacity = 8;
    workers = 2;
    retry_after_ms = 250;
    ctx = Ctx.default;
  }

type metrics = {
  c_requests : Obs.Counter.t;
  c_bad : Obs.Counter.t;
  c_lru_hits : Obs.Counter.t;
  c_coalesced : Obs.Counter.t;
  c_rejected : Obs.Counter.t;
  c_jobs : Obs.Counter.t;
  c_errors : Obs.Counter.t;
  c_evictions : Obs.Counter.t;
  c_disconnects : Obs.Counter.t;
  h_queue_depth : Obs.Histogram.t;
}

type t = {
  config : config;
  lru_mu : Mutex.t;  (* guards [lru] (Lru.t is not thread-safe) *)
  lru : Iv_table.t Lru.t;
  sf : Iv_table.t Single_flight.t;
  queue : (unit -> unit) Work_queue.t;
  workers : Thread.t list;
  m : metrics;
  state_mu : Mutex.t;  (* guards [stopping_flag] and [stopped] *)
  mutable stopping_flag : bool;
  mutable stopped : bool;
}

exception Busy

let create ?(config = default_config) () =
  (* A client that vanishes mid-response must surface as EPIPE on the
     write (counted below), not as a process-killing SIGPIPE.  No-op
     where the signal does not exist. *)
  (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | () -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ());
  let obs = config.ctx.Ctx.obs in
  (* The serving tier's whole point is mmap-served disk hits
     (docs/FORMAT.md): pre-register the table-cache counters a fleet
     operator watches so a [stats] snapshot reports them (as 0) even
     before the first disk hit, instead of omitting the row. *)
  List.iter
    (fun name -> ignore (Obs.Counter.make ~obs name : Obs.Counter.t))
    [
      "table_cache.mmap_hits";
      "table_cache.disk_hits";
      "table_cache.memory_hits";
      "table_cache.misses";
    ];
  let m =
    {
      c_requests = Obs.Counter.make ~obs "serve.requests";
      c_bad = Obs.Counter.make ~obs "serve.bad_requests";
      c_lru_hits = Obs.Counter.make ~obs "serve.lru_hits";
      c_coalesced = Obs.Counter.make ~obs "serve.coalesced_hits";
      c_rejected = Obs.Counter.make ~obs "serve.rejected";
      c_jobs = Obs.Counter.make ~obs "serve.jobs";
      c_errors = Obs.Counter.make ~obs "serve.errors";
      c_evictions = Obs.Counter.make ~obs "serve.lru_evictions";
      c_disconnects = Obs.Counter.make ~obs "serve.client_disconnects";
      h_queue_depth = Obs.Histogram.make ~obs "serve.queue_depth";
    }
  in
  let queue = Work_queue.create ~capacity:config.queue_capacity in
  let worker () =
    let rec loop () =
      match Work_queue.pop queue with
      | Some job ->
        job ();
        loop ()
      | None -> ()
    in
    loop ()
  in
  let workers =
    List.init (max 1 config.workers) (fun _ -> Thread.create worker ())
  in
  {
    config;
    lru_mu = Mutex.create ();
    lru = Lru.create ~capacity:config.lru_capacity;
    sf = Single_flight.create ();
    queue;
    workers;
    m;
    state_mu = Mutex.create ();
    stopping_flag = false;
    stopped = false;
  }

let stopping t = Mutex.protect t.state_mu (fun () -> t.stopping_flag)

let stop t =
  let join =
    Mutex.protect t.state_mu (fun () ->
        t.stopping_flag <- true;
        if t.stopped then false
        else begin
          t.stopped <- true;
          true
        end)
  in
  if join then begin
    Work_queue.close t.queue;
    List.iter Thread.join t.workers
  end

(* ------------------------------------------------------------------ *)
(* Table acquisition: LRU -> single-flight -> work queue -> workers    *)

type promise = {
  p_mu : Mutex.t;
  p_done : Condition.t;
  mutable p_res : (Iv_table.t, exn) result option;
}

let await p =
  Mutex.protect p.p_mu (fun () ->
      let rec go () =
        match p.p_res with
        | Some r -> r
        | None ->
          Condition.wait p.p_done p.p_mu;
          go ()
      in
      go ())

let fulfill p r =
  Mutex.protect p.p_mu (fun () ->
      p.p_res <- Some r;
      Condition.broadcast p.p_done)

(* Leader path of the single-flight: enqueue a generation job and wait.
   Runs on the connection thread; the Table_cache.get runs on a worker so
   the bounded queue + worker pool cap concurrent SCF sweeps. *)
let generate_via_queue t ~ctx ~grid p =
  let promise =
    { p_mu = Mutex.create (); p_done = Condition.create (); p_res = None }
  in
  let job () =
    Obs.Counter.incr t.m.c_jobs;
    let r =
      match
        Obs.Span.run ~obs:ctx.Ctx.obs "serve.generate" (fun () ->
            Table_cache.get ?grid ~ctx p)
      with
      | table -> Ok table
      | exception e -> Error e
    in
    fulfill promise r
  in
  Obs.Histogram.observe t.m.h_queue_depth (Work_queue.length t.queue);
  if not (Work_queue.try_push t.queue job) then raise Busy;
  match await promise with Ok table -> table | Error e -> raise e

let table_for t ~grid p =
  let ctx = t.config.ctx in
  let key = Table_cache.key ?grid ~ctx p in
  let cached =
    Mutex.protect t.lru_mu (fun () -> Lru.find t.lru key)
  in
  match cached with
  | Some table ->
    Obs.Counter.incr t.m.c_lru_hits;
    table
  | None ->
    let outcome =
      Single_flight.run t.sf key (fun () -> generate_via_queue t ~ctx ~grid p)
    in
    if outcome.Single_flight.coalesced then
      Obs.Counter.incr t.m.c_coalesced
    else
      Mutex.protect t.lru_mu (fun () ->
          match Lru.add t.lru key outcome.Single_flight.value with
          | Some _evicted -> Obs.Counter.incr t.m.c_evictions
          | None -> ());
    outcome.Single_flight.value

(* ------------------------------------------------------------------ *)
(* Request evaluation                                                  *)

let stats_json t =
  let snap = Obs.snapshot ~obs:t.config.ctx.Ctx.obs () in
  Sjson.Obj
    [
      ("enabled", Sjson.Bool snap.Obs.snap_enabled);
      ( "counters",
        Sjson.Obj
          (List.map
             (fun (name, v) -> (name, Sjson.Num (float_of_int v)))
             snap.Obs.snap_counters) );
      ("queue_length", Sjson.Num (float_of_int (Work_queue.length t.queue)));
      ("in_flight", Sjson.Num (float_of_int (Single_flight.in_flight t.sf)));
      ( "lru_length",
        Sjson.Num
          (float_of_int (Mutex.protect t.lru_mu (fun () -> Lru.length t.lru)))
      );
    ]

let eval t (op : Serve_protocol.op) =
  match op with
  | Serve_protocol.Ping -> Sjson.Obj [ ("pong", Sjson.Bool true) ]
  | Serve_protocol.Stats -> stats_json t
  | Serve_protocol.Shutdown ->
    Mutex.protect t.state_mu (fun () -> t.stopping_flag <- true);
    Sjson.Obj [ ("stopping", Sjson.Bool true) ]
  | Serve_protocol.Table { params; grid } ->
    Serve_protocol.table_to_json (table_for t ~grid params)
  | Serve_protocol.Iv { params; grid; vg; vd } ->
    let table = table_for t ~grid params in
    Sjson.Obj
      [
        ("key", Sjson.Str table.Iv_table.key);
        ("vg", Sjson.Num vg);
        ("vd", Sjson.Num vd);
        ("current", Sjson.Num (Iv_table.current_at table ~vg ~vd));
        ("charge", Sjson.Num (Iv_table.charge_at table ~vg ~vd));
      ]

let handle_line t line =
  Obs.Counter.incr t.m.c_requests;
  match Serve_protocol.parse_request line with
  | Error detail ->
    Obs.Counter.incr t.m.c_bad;
    (* Best-effort id recovery so the client can still correlate. *)
    let id =
      match Sjson.parse line with
      | Ok (Sjson.Obj fields) ->
        Option.bind (List.assoc_opt "id" fields) Sjson.to_int
      | _ -> None
    in
    Serve_protocol.error_line ~id
      { Serve_protocol.kind = "bad_request"; detail; retry_after_ms = None }
  | Ok { Serve_protocol.id; op } ->
    if stopping t && op <> Serve_protocol.Shutdown then
      Serve_protocol.error_line ~id
        {
          Serve_protocol.kind = "shutting_down";
          detail = "server is shutting down";
          retry_after_ms = None;
        }
    else (
      match
        Obs.Span.run ~obs:t.config.ctx.Ctx.obs "serve.request" (fun () ->
            eval t op)
      with
      | result -> Serve_protocol.ok_line ~id result
      | exception Busy ->
        Obs.Counter.incr t.m.c_rejected;
        Serve_protocol.error_line ~id
          {
            Serve_protocol.kind = "busy";
            detail = "generation queue is full; retry later";
            retry_after_ms = Some t.config.retry_after_ms;
          }
      | exception Robust_error.Error e ->
        Obs.Counter.incr t.m.c_errors;
        Serve_protocol.error_line ~id (Serve_protocol.error_of_robust e)
      | exception e ->
        Obs.Counter.incr t.m.c_errors;
        Serve_protocol.error_line ~id
          {
            Serve_protocol.kind = "internal";
            detail = Printexc.to_string e;
            retry_after_ms = None;
          })

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)

let serve_stdio t ic oc =
  let rec loop () =
    match input_line ic with
    | line ->
      let line = String.trim line in
      if line <> "" then begin
        output_string oc (handle_line t line);
        output_char oc '\n';
        flush oc
      end;
      if not (stopping t) then loop ()
    | exception End_of_file -> ()
  in
  loop ();
  stop t

let serve_unix t ~path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 16;
  let conn_mu = Mutex.create () in
  let conns = ref [] in
  let handle_conn fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (* A peer that disconnects while we write (EPIPE/ECONNRESET,
       surfacing as Sys_error through the channel layer now that
       SIGPIPE is ignored) is routine client behavior, not a server
       fault: count it and end this connection's loop instead of
       letting the exception kill the thread. *)
    let write_response line =
      match
        output_string oc line;
        output_char oc '\n';
        flush oc
      with
      | () -> true
      | exception (Sys_error _ | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _))
        ->
        Obs.Counter.incr t.m.c_disconnects;
        false
    in
    let rec loop () =
      match input_line ic with
      | line ->
        let line = String.trim line in
        let alive = if line <> "" then write_response (handle_line t line) else true in
        if not alive then ()
        else if stopping t then
          (* Wake the accept loop so the whole server winds down. *)
          (match Unix.shutdown listen_fd Unix.SHUTDOWN_RECEIVE with
          | () -> ()
          | exception Unix.Unix_error _ -> ())
        else loop ()
      | exception End_of_file -> ()
      | exception Sys_error _ -> ()
    in
    loop ();
    (* Closing the channel closes fd; a racing peer close is fine. *)
    match close_in ic with
    | () -> ()
    | exception Sys_error _ -> ()
  in
  let rec accept_loop () =
    match Unix.accept listen_fd with
    | fd, _ ->
      let th = Thread.create handle_conn fd in
      Mutex.protect conn_mu (fun () -> conns := th :: !conns);
      if stopping t then () else accept_loop ()
    | exception Unix.Unix_error ((Unix.EINVAL | Unix.EBADF | Unix.ECONNABORTED), _, _)
      ->
      if stopping t then () else accept_loop ()
  in
  accept_loop ();
  List.iter Thread.join (Mutex.protect conn_mu (fun () -> !conns));
  (match Unix.close listen_fd with
  | () -> ()
  | exception Unix.Unix_error _ -> ());
  (match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error _ -> ());
  stop t
