(** Hardened blocking client for the daemon's Unix-socket transport
    (used by [gnrfet_cli query], the campaign engine's serve executor
    and the tests).

    Every failure is typed — {!Robust_error.Client_timeout} or
    {!Robust_error.Client_disconnected}, raised as
    [Robust_error.Error] — and every failure path closes the socket
    descriptor; the next call reconnects transparently.  {!request} is
    a single attempt under a deadline; {!call} adds the retry policy: a
    [busy] rejection is retried honoring the daemon's [retry_after_ms]
    hint (exponential backoff + deterministic jitter otherwise), a
    disconnect reconnects and retries, and a circuit breaker fails fast
    after [breaker_threshold] consecutive connection-level failures so
    a dead daemon costs microseconds, not timeouts (full policy table
    in docs/CAMPAIGN.md).  Connecting also ignores SIGPIPE
    process-wide, so writes on a dead socket surface as EPIPE → typed
    disconnect instead of killing the process. *)

type config = {
  request_timeout_s : float;  (** per-request deadline (default 30) *)
  max_attempts : int;
      (** total attempts per {!call}, first one included (default 4) *)
  backoff_base_ms : int;
      (** backoff of the first retry without a daemon hint (default 50,
          doubling per attempt) *)
  backoff_max_ms : int;  (** backoff ceiling (default 2000) *)
  breaker_threshold : int;
      (** consecutive connection-level failures that open the breaker
          (default 3) *)
  breaker_cooldown_s : float;
      (** how long an open breaker fails fast before allowing a new
          attempt (default 5) *)
  jitter_seed : int;
      (** seed of the deterministic (splitmix64) jitter stream; two
          clients with different seeds desynchronize their retries *)
  sleep_ms : int -> unit;
      (** how to wait between retries (default [Thread.delay]); tests
          inject a recorder to assert the backoff schedule without
          wall-clock waits *)
}

val default_config : config

type t

val connect : ?config:config -> path:string -> unit -> t
(** Dial the daemon.  Raises [Unix.Unix_error] when the socket is
    absent or refusing (callers polling for daemon startup match on
    it); never leaks the descriptor on failure. *)

val request : t -> Serve_protocol.request -> Serve_protocol.response
(** One attempt: send one request line and block for its response line
    under [request_timeout_s].  Raises [Robust_error.Error] with
    [Client_timeout] (deadline missed; connection poisoned and closed)
    or [Client_disconnected] (EOF, reset, unparseable response, or
    reconnect failure).  A dead client reconnects first. *)

val call : t -> Serve_protocol.request -> Serve_protocol.response
(** {!request} under the retry policy described above.  Returns the
    final response — including a [busy] error response when the daemon
    stayed busy through [max_attempts] (the caller decides whether
    that degrades to local generation).  Raises the last typed error
    when retries are exhausted by disconnects, immediately on a
    timeout, and [Client_disconnected] with detail
    ["circuit breaker open"] while the breaker is open. *)

val close : t -> unit
(** Close the descriptor (idempotent; double close is benign). *)
