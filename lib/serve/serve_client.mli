(** Minimal blocking client for the daemon's Unix-socket transport
    (used by [gnrfet_cli query] and the tests). *)

type t

val connect : path:string -> t
(** Raises [Unix.Unix_error] when the socket is absent or refusing. *)

val request : t -> Serve_protocol.request -> Serve_protocol.response
(** Send one request line and block for its response line.  Raises
    [Failure] on EOF or an unparseable response. *)

val close : t -> unit
