type 'a entry = {
  mutable result : ('a, exn) result option;  (* None while in flight *)
  done_ : Condition.t;
}

type 'a t = { mu : Mutex.t; inflight : (string, 'a entry) Hashtbl.t }

type 'a outcome = { value : 'a; coalesced : bool }

let create () = { mu = Mutex.create (); inflight = Hashtbl.create 16 }

let in_flight t = Mutex.protect t.mu (fun () -> Hashtbl.length t.inflight)

let run t key f =
  Mutex.lock t.mu;
  match Hashtbl.find_opt t.inflight key with
  | Some entry ->
    (* Follower: wait for the leader to publish, then share its fate.
       The entry stays valid after the leader removes the key — we hold
       a direct reference. *)
    let rec await () =
      match entry.result with
      | Some r -> r
      | None ->
        Condition.wait entry.done_ t.mu;
        await ()
    in
    let r = await () in
    Mutex.unlock t.mu;
    (match r with
    | Ok value -> { value; coalesced = true }
    | Error e -> raise e)
  | None ->
    (* Leader: publish the entry, compute outside the lock, then
       broadcast.  The key is removed before waking followers so the
       next request after completion starts fresh. *)
    let entry = { result = None; done_ = Condition.create () } in
    Hashtbl.replace t.inflight key entry;
    Mutex.unlock t.mu;
    let r = match f () with v -> Ok v | exception e -> Error e in
    Mutex.lock t.mu;
    entry.result <- Some r;
    Hashtbl.remove t.inflight key;
    Condition.broadcast entry.done_;
    Mutex.unlock t.mu;
    (match r with
    | Ok value -> { value; coalesced = false }
    | Error e -> raise e)
