type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printer                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf v =
  if Float.is_integer v && Float.abs v <= 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else if Float.is_nan v then Buffer.add_string buf "null"
  else if v = Float.infinity then Buffer.add_string buf "1e999"
  else if v = Float.neg_infinity then Buffer.add_string buf "-1e999"
  else begin
    (* Shortest decimal that round-trips the double. *)
    let s = Printf.sprintf "%.15g" v in
    let s = if float_of_string s = v then s else Printf.sprintf "%.17g" v in
    Buffer.add_string buf s
  end

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> add_num buf v
  | Str s -> add_escaped buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected '%c', got '%c'" c got)
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  (* Append a unicode scalar value as UTF-8. *)
  let add_utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let hex c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail "invalid \\u escape"
    in
    let v =
      (hex s.[!pos] lsl 12)
      lor (hex s.[!pos + 1] lsl 8)
      lor (hex s.[!pos + 2] lsl 4)
      lor hex s.[!pos + 3]
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         let c = s.[!pos] in
         advance ();
         match c with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           let hi = hex4 () in
           if hi >= 0xD800 && hi <= 0xDBFF then begin
             (* Surrogate pair: the low half must follow as \uXXXX. *)
             if
               !pos + 2 <= n
               && s.[!pos] = '\\'
               && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo < 0xDC00 || lo > 0xDFFF then fail "invalid low surrogate";
               add_utf8 buf (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
             end
             else fail "lone high surrogate"
           end
           else if hi >= 0xDC00 && hi <= 0xDFFF then fail "lone low surrogate"
           else add_utf8 buf hi
         | c -> fail (Printf.sprintf "invalid escape '\\%c'" c));
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "malformed number"
    in
    (* RFC 8259 integer part: "0" or [1-9][0-9]*, no leading zeros. *)
    (match peek () with
    | Some '0' -> advance ()
    | Some ('1' .. '9') -> digits ()
    | _ -> fail "malformed number");
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}' in object"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']' in array"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after JSON value";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Bad (pos, msg) -> Error (Printf.sprintf "byte %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let keys = function Obj fields -> List.map fst fields | _ -> []

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v && Float.abs v <= 1e15 ->
    Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let of_float_array a = List (Array.to_list (Array.map (fun v -> Num v) a))

let of_matrix m = List (Array.to_list (Array.map of_float_array m))
