(* Hardened client for the daemon's Unix-socket transport
   (docs/SERVE.md, retry policy in docs/CAMPAIGN.md).

   Raw-descriptor I/O (no channels) so a per-request deadline can be
   enforced with [Unix.select]; every failure is one of the typed
   [Robust_error] client constructors instead of [Failure], and every
   failure path closes the descriptor — a poisoned connection (missed
   deadline, desynchronized protocol) is never reused. *)

type config = {
  request_timeout_s : float;
  max_attempts : int;
  backoff_base_ms : int;
  backoff_max_ms : int;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  jitter_seed : int;
  sleep_ms : int -> unit;
}

let default_config =
  {
    request_timeout_s = 30.;
    max_attempts = 4;
    backoff_base_ms = 50;
    backoff_max_ms = 2000;
    breaker_threshold = 3;
    breaker_cooldown_s = 5.;
    jitter_seed = 1;
    sleep_ms = (fun ms -> Thread.delay (float_of_int ms /. 1000.));
  }

type t = {
  path : string;
  cfg : config;
  mutable fd : Unix.file_descr option;
  buf : Buffer.t;  (* bytes read past the last extracted line *)
  mutable failures : int;  (* consecutive connection-level failures *)
  mutable open_until : float;  (* breaker: fail fast until this time *)
  mutable rng : int64;  (* deterministic jitter stream *)
}

let c_timeouts = Obs.Counter.make "serve_client.timeouts"

let c_disconnects = Obs.Counter.make "serve_client.disconnects"

let c_reconnects = Obs.Counter.make "serve_client.reconnects"

let c_retries = Obs.Counter.make "serve_client.retries"

let c_breaker_opens = Obs.Counter.make "serve_client.breaker_opens"

let c_breaker_fastfail = Obs.Counter.make "serve_client.breaker_fastfail"

(* A SIGPIPE on a dead socket must surface as EPIPE (a typed
   disconnect), not kill the process.  Idempotent; no-op where the
   signal does not exist. *)
let ignore_sigpipe =
  lazy
    (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
    | () -> ()
    | exception (Invalid_argument _ | Sys_error _) -> ())

let op_name (req : Serve_protocol.request) =
  match req.Serve_protocol.op with
  | Serve_protocol.Ping -> "ping"
  | Serve_protocol.Stats -> "stats"
  | Serve_protocol.Table _ -> "table"
  | Serve_protocol.Iv _ -> "iv"
  | Serve_protocol.Shutdown -> "shutdown"

let connect_fd path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
    (match Unix.close fd with
    | () -> ()
    | exception Unix.Unix_error _ -> ());
    raise e);
  fd

let connect ?(config = default_config) ~path () =
  Lazy.force ignore_sigpipe;
  let fd = connect_fd path in
  {
    path;
    cfg = config;
    fd = Some fd;
    buf = Buffer.create 256;
    failures = 0;
    open_until = 0.;
    rng = Int64.of_int (config.jitter_seed lxor 0x6A5D);
  }

let mark_dead t =
  (match t.fd with
  | Some fd ->
    (match Unix.close fd with
    | () -> ()
    | exception Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None;
  Buffer.clear t.buf

let close t = mark_dead t

let disconnected ~op detail =
  Obs.Counter.incr c_disconnects;
  Robust_error.raise_ (Robust_error.Client_disconnected { op; detail })

(* Reconnect lazily: [request] on a client whose descriptor died (or
   was closed) dials again instead of failing forever. *)
let ensure_fd t ~op =
  match t.fd with
  | Some fd -> fd
  | None ->
    (match connect_fd t.path with
    | fd ->
      Obs.Counter.incr c_reconnects;
      Buffer.clear t.buf;
      t.fd <- Some fd;
      fd
    | exception Unix.Unix_error (e, _, _) ->
      disconnected ~op ("reconnect failed: " ^ Unix.error_message e))

let write_all t fd ~op line =
  let b = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length b in
  let rec go pos =
    if pos < len then begin
      match Unix.write fd b pos (len - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
        ->
        mark_dead t;
        disconnected ~op "write failed (peer closed)"
    end
  in
  go 0

(* Extract the first full line from [t.buf], leaving the rest. *)
let take_line t =
  let s = Buffer.contents t.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear t.buf;
    Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
    Some (String.sub s 0 i)

let read_line_deadline t fd ~op ~deadline =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match take_line t with
    | Some line -> line
    | None ->
      let remaining = deadline -. Obs.now () in
      if remaining <= 0. then begin
        (* The response may still arrive later and would desynchronize
           the line protocol: poison the connection. *)
        mark_dead t;
        Obs.Counter.incr c_timeouts;
        Robust_error.raise_
          (Robust_error.Client_timeout
             { op; deadline_s = t.cfg.request_timeout_s })
      end
      else begin
        let readable, _, _ = Unix.select [ fd ] [] [] remaining in
        if readable = [] then go ()
        else
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 ->
            mark_dead t;
            disconnected ~op "connection closed by daemon"
          | n ->
            Buffer.add_subbytes t.buf chunk 0 n;
            go ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
            ->
            mark_dead t;
            disconnected ~op "read failed (connection reset)"
      end
  in
  go ()

let request t req =
  let op = op_name req in
  let fd = ensure_fd t ~op in
  let deadline = Obs.now () +. t.cfg.request_timeout_s in
  write_all t fd ~op (Serve_protocol.request_to_line req);
  let line = read_line_deadline t fd ~op ~deadline in
  match Serve_protocol.parse_response line with
  | Ok r -> r
  | Error e ->
    (* Unparseable response: the stream offset is unknowable now. *)
    mark_dead t;
    disconnected ~op ("bad response: " ^ e)

(* ------------------------------------------------------------------ *)
(* Retry policy (docs/CAMPAIGN.md)                                     *)

let next_jitter t ~base_ms =
  t.rng <- Fault.splitmix64 t.rng;
  if base_ms <= 0 then 0
  else
    Int64.to_int
      (Int64.rem
         (Int64.shift_right_logical t.rng 1)
         (Int64.of_int (max 1 (base_ms / 4))))

let backoff_ms t ~attempt =
  let shift = min (attempt - 1) 16 in
  min t.cfg.backoff_max_ms (t.cfg.backoff_base_ms * (1 lsl shift))

let breaker_open t = Obs.now () < t.open_until

let record_failure t =
  t.failures <- t.failures + 1;
  if t.failures >= t.cfg.breaker_threshold then begin
    t.open_until <- Obs.now () +. t.cfg.breaker_cooldown_s;
    Obs.Counter.incr c_breaker_opens
  end

let call t req =
  let op = op_name req in
  if breaker_open t then begin
    Obs.Counter.incr c_breaker_fastfail;
    Robust_error.raise_
      (Robust_error.Client_disconnected { op; detail = "circuit breaker open" })
  end;
  let sleep ms = if ms > 0 then t.cfg.sleep_ms ms in
  let rec attempt k =
    match request t req with
    | {
        Serve_protocol.result =
          Error { Serve_protocol.kind = "busy"; retry_after_ms; _ };
        _;
      } as r ->
      if k >= t.cfg.max_attempts then r
      else begin
        (* Honor the daemon's own hint when it gives one; otherwise
           back off exponentially.  Either way add deterministic
           jitter so a fleet of clients does not reconverge. *)
        let base_ms =
          match retry_after_ms with
          | Some ms -> ms
          | None -> backoff_ms t ~attempt:k
        in
        Obs.Counter.incr c_retries;
        sleep (base_ms + next_jitter t ~base_ms);
        attempt (k + 1)
      end
    | r ->
      t.failures <- 0;
      r
    | exception Robust_error.Error (Robust_error.Client_disconnected _ as err)
      ->
      record_failure t;
      if k >= t.cfg.max_attempts || breaker_open t then Robust_error.raise_ err
      else begin
        let base_ms = backoff_ms t ~attempt:k in
        Obs.Counter.incr c_retries;
        sleep (base_ms + next_jitter t ~base_ms);
        attempt (k + 1)
      end
    | exception (Robust_error.Error (Robust_error.Client_timeout _) as e) ->
      (* A deadline miss already cost a full timeout window; retrying
         multiplies the caller's latency with little hope (the daemon
         is wedged, not briefly busy).  Count it and let the caller's
         fallback take over. *)
      record_failure t;
      raise e
  in
  attempt 1
