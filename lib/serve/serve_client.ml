type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ~path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
    (match Unix.close fd with
    | () -> ()
    | exception Unix.Unix_error _ -> ());
    raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let request t req =
  output_string t.oc (Serve_protocol.request_to_line req);
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | line ->
    (match Serve_protocol.parse_response line with
    | Ok r -> r
    | Error e -> failwith ("serve_client: bad response: " ^ e))
  | exception End_of_file -> failwith "serve_client: connection closed"

let close t =
  (* close_in closes the shared descriptor; double-close is the only
     other failure mode and both are benign here. *)
  match close_in t.ic with
  | () -> ()
  | exception Sys_error _ -> ()
