(** Single-flight deduplication: concurrent computations for the same
    key coalesce onto one in-flight call.

    The first thread to request a key becomes its {e leader} and runs
    the computation; every thread that requests the same key while the
    leader is still running blocks until the leader finishes and then
    shares its result (or re-raises its exception) without running the
    computation at all.  Once the leader finishes, the key leaves the
    in-flight map — the {e next} request for it starts a fresh
    computation, so a leader whose computation populates a cache before
    returning guarantees followers-turned-cache-hits with no window for
    duplicate work (docs/SERVE.md).

    Thread-safe; the computation itself runs outside the internal lock,
    so unrelated keys never serialize each other. *)

type 'a t

val create : unit -> 'a t

type 'a outcome = {
  value : 'a;
  coalesced : bool;
      (** [true] when this call shared a leader's result instead of
          computing *)
}

val run : 'a t -> string -> (unit -> 'a) -> 'a outcome
(** [run t key f] computes [f ()] as leader or waits for the current
    leader of [key].  If the leader's [f] raises, every coalesced
    waiter re-raises the same exception. *)

val in_flight : 'a t -> int
(** Number of keys currently being computed (for the queue-depth
    metrics). *)
