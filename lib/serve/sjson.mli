(** Minimal JSON for the serve protocol.

    The container image carries no JSON dependency (bench/obs hand-roll
    their emitters), so the newline-delimited serve protocol
    (docs/SERVE.md) gets a small self-contained value type, parser and
    printer here.  The parser accepts strict JSON (RFC 8259: UTF-8
    input, [\uXXXX] escapes decoded to UTF-8, no trailing garbage); the
    printer emits one line with no internal newlines, floats rendered
    with round-trip precision ([%.17g]-style shortest form). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** insertion order preserved *)

val parse : string -> (t, string) result
(** [Error msg] carries a byte offset and description; never raises. *)

val to_string : t -> string
(** Compact single-line rendering.  [Num] values that are integral (and
    within int range) print without a decimal point, so request ids
    round-trip textually. *)

(** {2 Accessors} — all total, [None]/default on shape mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj] ([None] on missing field or non-object). *)

val keys : t -> string list
(** Field names of an [Obj] (empty otherwise). *)

val to_float : t -> float option

val to_int : t -> int option
(** [Num] within [int] range and integral. *)

val to_str : t -> string option

val to_bool : t -> bool option

val to_list : t -> t list option

val of_float_array : float array -> t

val of_matrix : float array array -> t
