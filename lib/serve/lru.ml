(* Intrusive doubly-linked recency list: [first] is most recent, [last]
   least.  Nodes are never shared between caches. *)
type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* toward most recent *)
  mutable next : 'a node option;  (* toward least recent *)
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable first : 'a node option;
  mutable last : 'a node option;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  { cap = capacity; table = Hashtbl.create (max 8 capacity); first = None; last = None }

let capacity t = t.cap

let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.first <- node.next);
  (match node.next with
  | Some nx -> nx.prev <- node.prev
  | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  node.prev <- None;
  (match t.first with Some f -> f.prev <- Some node | None -> t.last <- Some node);
  t.first <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
    unlink t node;
    push_front t node;
    Some node.value

let add t key value =
  if t.cap = 0 then None
  else
    match Hashtbl.find_opt t.table key with
    | Some node ->
      node.value <- value;
      unlink t node;
      push_front t node;
      None
    | None ->
      let node = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node;
      if Hashtbl.length t.table <= t.cap then None
      else begin
        match t.last with
        | Some victim ->
          unlink t victim;
          Hashtbl.remove t.table victim.key;
          Some victim.key
        | None -> None (* cap >= 1 and length >= 2: unreachable *)
      end

let clear t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None
