(** Wire protocol of the table-serving daemon (gnrfet-serve-v1).

    Newline-delimited JSON: each request is one JSON object on one
    line, answered by exactly one JSON object on one line, in request
    order per connection.  The full schema (field inventory, error
    kinds, examples) lives in docs/SERVE.md; this module is the single
    encoder/decoder both the server and the client use.

    Requests: [{"id": n, "op": "ping" | "stats" | "table" | "iv" |
    "shutdown", ...}] with [params]/[grid]/[vg]/[vd] payload fields for
    the table ops.  Responses: [{"id": n, "ok": true, "result": ...}]
    or [{"id": n, "ok": false, "error": {"kind": ..., "detail": ...,
    "retry_after_ms": ...?}}]. *)

type op =
  | Ping
  | Stats  (** obs counter snapshot of the server registry *)
  | Table of { params : Params.t; grid : Iv_table.grid_spec option }
      (** the full ID/Q table (generating it on miss) *)
  | Iv of {
      params : Params.t;
      grid : Iv_table.grid_spec option;
      vg : float;
      vd : float;
    }  (** one bilinearly interpolated (ID, Q) point off the table *)
  | Shutdown

type request = { id : int option; op : op }

val parse_request : string -> (request, string) result
(** Decode one request line.  Strict: unknown [op], unknown [params]
    field, or a malformed grid is an [Error] (the server answers those
    with a [bad_request] response carrying whatever [id] could be
    recovered). *)

val request_to_line : request -> string
(** Encode (client side); single line, no trailing newline. *)

(** {2 Params/grid payloads} *)

val params_of_json : Sjson.t -> (Params.t, string) result
(** Build from {!Params.default} with per-field overrides: [gnr_index],
    [channel_length], [oxide_thickness], [oxide_eps_r], [temperature],
    [n_modes], [gate_offset], [contact_gamma], [width_fringe],
    [energy_step], [energy_margin], [contact_style] ("point"/"plane"),
    [impurity_charge] (the paper's standard oxide impurity, in units of
    |q|).  Unknown fields are rejected, not ignored. *)

val params_to_json : Params.t -> Sjson.t
(** Inverse for the fields above (impurities render as
    [impurity_charge] only when the list is exactly the paper default
    shape; richer impurity lists are not representable on the wire). *)

val grid_of_json : Sjson.t -> (Iv_table.grid_spec, string) result

val grid_to_json : Iv_table.grid_spec -> Sjson.t

val table_to_json : Iv_table.t -> Sjson.t
(** [{"key", "vg", "vd", "current", "charge", "failed_points"}] —
    failed points as [[ivg, ivd]] pairs (docs/ROBUST.md). *)

val table_of_json : Sjson.t -> (Iv_table.t, string) result
(** Inverse of {!table_to_json}, for clients reconstructing a full
    table from a [table] response (the campaign engine's serve
    executor).  Strict about shape: missing fields or matrix dimensions
    that disagree with the axes are [Error]s, so a corrupted response
    surfaces as a typed client failure instead of a downstream
    out-of-bounds. *)

(** {2 Responses} *)

type error = {
  kind : string;
      (** ["busy"] (backpressure reject; check [retry_after_ms]),
          ["bad_request"], ["shutting_down"], a {!Robust_error.t}
          constructor in snake case (["scf_stalled"], ["scf_max_iter"],
          ["unrecovered"], ...), or ["internal"] *)
  detail : string;
  retry_after_ms : int option;
}

type response = {
  r_id : int option;
  result : (Sjson.t, error) result;
}

val ok_line : id:int option -> Sjson.t -> string
(** Encode a success response; single line, no trailing newline. *)

val error_line : id:int option -> error -> string

val parse_response : string -> (response, string) result
(** Decode one response line (client side). *)

val error_of_robust : Robust_error.t -> error
(** Serialize a typed solver failure (PR 4 taxonomy) into a wire error:
    the constructor name in snake case plus its rendered detail. *)
