type 'a t = {
  cap : int;
  mu : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Work_queue.create: negative capacity";
  {
    cap = capacity;
    mu = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    closed = false;
  }

let capacity t = t.cap

let length t = Mutex.protect t.mu (fun () -> Queue.length t.items)

let try_push t x =
  Mutex.protect t.mu (fun () ->
      if t.closed || Queue.length t.items >= t.cap then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  Mutex.protect t.mu (fun () ->
      let rec go () =
        if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.mu;
          go ()
        end
      in
      go ())

let close t =
  Mutex.protect t.mu (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)
