(** gnrfet_serve — concurrent table-serving daemon core.

    One server instance owns: a small in-memory {!Lru} of generated
    tables in front of {!Table_cache} (whose on-disk layer persists
    across restarts), a {!Single_flight} map coalescing concurrent
    requests for the same table key onto one generation, and a bounded
    {!Work_queue} feeding a fixed pool of generation workers — so at
    most [workers] SCF sweeps run at once and everything beyond
    [queue_capacity] waiting jobs is rejected with a
    retry-after hint instead of piling up (docs/SERVE.md).

    {!handle_line} is the transport-independent request evaluator;
    {!serve_stdio} (tests, CI) and {!serve_unix} (clients) are thin
    line-pumps around it.  [handle_line] is thread-safe: the Unix
    transport calls it from one thread per connection. *)

type config = {
  lru_capacity : int;  (** tables kept hot in memory (default 32) *)
  queue_capacity : int;
      (** waiting generation jobs before rejection (default 8) *)
  workers : int;  (** generation worker threads (default 2) *)
  retry_after_ms : int;
      (** hint attached to busy rejections (default 250) *)
  ctx : Ctx.t;
      (** execution context for generations; [ctx.obs] also receives the
          server's own [serve.*] metrics *)
}

val default_config : config
(** Defaults above with [ctx = Ctx.default]. *)

type t

val create : ?config:config -> unit -> t
(** Starts the worker threads immediately.  Also ignores SIGPIPE
    process-wide so a client that disconnects mid-response surfaces as
    a counted write failure ([serve.client_disconnects], docs/OBS.md)
    on that connection's thread instead of killing the process. *)

val handle_line : t -> string -> string
(** Evaluate one request line into one response line (no trailing
    newline).  Never raises: parse failures become [bad_request]
    responses, queue-full becomes [busy], typed solver failures
    serialize via {!Serve_protocol.error_of_robust}, anything else
    becomes [internal]. *)

val stopping : t -> bool
(** True once a [shutdown] request has been evaluated. *)

val stop : t -> unit
(** Close the work queue and join the workers.  Idempotent; called by
    the serve loops on exit. *)

val serve_stdio : t -> in_channel -> out_channel -> unit
(** Pump request lines until EOF or a [shutdown] op, answering each on
    its own line (responses in request order).  Flushes after every
    response; stops the server before returning. *)

val serve_unix : t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (unlinking a stale one), accept
    connections until a [shutdown] op arrives on any of them, one thread
    per connection.  Removes the socket file and stops the server before
    returning. *)
