(** 3D finite-difference Poisson solver on a uniform box grid.

    This is the validation-grade counterpart of the paper's 3D FEM solver:
    it is used in the test suite and for computing impurity potential
    profiles (screened point charges between grounded gate planes), not in
    the inner self-consistent loop (see the substitution log in DESIGN.md). *)

type t

val make :
  nx:int ->
  ny:int ->
  nz:int ->
  spacing:float ->
  eps_r:(float -> float -> float -> float) ->
  t
(** Uniform grid of [nx*ny*nz] nodes with the given spacing (m); Dirichlet
    u = boundary value on all six faces. *)

type charge = { ix : int; iy : int; iz : int; coulombs : float }
(** A point charge assigned to one grid node. *)

val solve :
  ?tol:float -> ?boundary:float -> t -> charges:charge list -> float array array array
(** Node potentials [u.(ix).(iy).(iz)] in volts ([u = -V] mid-gap
    convention, so a negative charge produces a positive [u] bump).
    Conjugate-gradient solution; raises {!Sparse.No_convergence} if the
    CG iteration cap is hit.  Instrumented: bumps [poisson3d.solves],
    [poisson3d.cg_iterations] and the [poisson3d.solve] timer in
    {!Obs.global} (see docs/OBS.md). *)

val line_profile :
  float array array array -> iy:int -> iz:int -> float array
(** Extract [u.(ix).(iy).(iz)] along x. *)
