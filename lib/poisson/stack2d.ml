type contact_style = Plane | Point

type dirichlet = D_left | D_right | D_bottom | D_top

type t = {
  xs : float array;
  zs : float array;
  sheet_row : int;
  style : contact_style;
  unknown_of : int array array; (* node -> unknown index, or -1 *)
  dirichlet_of : dirichlet option array array;
  matrix : Banded.t; (* factorized *)
  cond_east : float array array; (* (nx-1) x nz *)
  cond_north : float array array; (* nx x (nz-1) *)
  n_unknowns : int;
}

type bc = { left : float; right : float; bottom : float; top : float }

let nx t = Array.length t.xs
let nz t = Array.length t.zs

let cell_size axis k =
  let n = Array.length axis in
  let lo = if k = 0 then axis.(0) else 0.5 *. (axis.(k - 1) +. axis.(k)) in
  let hi = if k = n - 1 then axis.(n - 1) else 0.5 *. (axis.(k) +. axis.(k + 1)) in
  hi -. lo

let make ?(contact_style = Point) ~xs ~zs ~eps_r ~sheet_row () =
  let nx = Array.length xs and nz = Array.length zs in
  if nx < 3 || nz < 3 then invalid_arg "Stack2d.make: grid too small";
  if sheet_row <= 0 || sheet_row >= nz - 1 then
    invalid_arg "Stack2d.make: sheet_row must be interior";
  let eps x z = Const.eps0 *. eps_r x z in
  let cond_east =
    Array.init (nx - 1) (fun i ->
        Array.init nz (fun j ->
            let xm = 0.5 *. (xs.(i) +. xs.(i + 1)) in
            eps xm zs.(j) *. cell_size zs j /. (xs.(i + 1) -. xs.(i))))
  in
  let cond_north =
    Array.init nx (fun i ->
        Array.init (nz - 1) (fun j ->
            let zm = 0.5 *. (zs.(j) +. zs.(j + 1)) in
            eps xs.(i) zm *. cell_size xs i /. (zs.(j + 1) -. zs.(j))))
  in
  (* Classify nodes: gates always Dirichlet; contacts per style. *)
  let dirichlet_of =
    Array.init nx (fun i ->
        Array.init nz (fun j ->
            if j = 0 then Some D_bottom
            else if j = nz - 1 then Some D_top
            else begin
              match contact_style with
              | Plane ->
                if i = 0 then Some D_left
                else if i = nx - 1 then Some D_right
                else None
              | Point ->
                if i = 0 && j = sheet_row then Some D_left
                else if i = nx - 1 && j = sheet_row then Some D_right
                else None
            end))
  in
  let unknown_of = Array.make_matrix nx nz (-1) in
  let count = ref 0 in
  for i = 0 to nx - 1 do
    for j = 1 to nz - 2 do
      if dirichlet_of.(i).(j) = None then begin
        unknown_of.(i).(j) <- !count;
        incr count
      end
    done
  done;
  let n_unknowns = !count in
  (* i-major with j fastest: neighbour offsets bounded by nz. *)
  let m = Banded.create ~n:n_unknowns ~bandwidth:nz in
  for i = 0 to nx - 1 do
    for j = 1 to nz - 2 do
      let k = unknown_of.(i).(j) in
      if k >= 0 then begin
        let stamp neighbour cond =
          match neighbour with
          | None -> () (* outside the domain: Neumann, zero flux *)
          | Some (i', j') ->
            Banded.add_to m k k cond;
            let k' = unknown_of.(i').(j') in
            if k' >= 0 then Banded.add_to m k k' (-.cond)
          (* Dirichlet neighbours contribute to the RHS in [solve]. *)
        in
        stamp (if i > 0 then Some (i - 1, j) else None)
          (if i > 0 then cond_east.(i - 1).(j) else 0.);
        stamp (if i < nx - 1 then Some (i + 1, j) else None)
          (if i < nx - 1 then cond_east.(i).(j) else 0.);
        stamp (Some (i, j - 1)) cond_north.(i).(j - 1);
        stamp (Some (i, j + 1)) cond_north.(i).(j)
      end
    done
  done;
  Banded.factorize m;
  {
    xs;
    zs;
    sheet_row;
    style = contact_style;
    unknown_of;
    dirichlet_of;
    matrix = m;
    cond_east;
    cond_north;
    n_unknowns;
  }

let dirichlet_value bc = function
  | D_left -> bc.left
  | D_right -> bc.right
  | D_bottom -> bc.bottom
  | D_top -> bc.top

(* Direct (factorized banded) solver, so there is no iteration count to
   report — just how often SCF calls it and what each solve costs. *)
let obs_solves = Obs.Counter.make "stack2d.solves"
let obs_solve_time = Obs.Timer.make "stack2d.solve"

let solve t ~bc ~sheet_charge =
  Obs.Counter.incr obs_solves;
  let t0 = Obs.Timer.start obs_solve_time in
  (* Stop on every path: the sheet-charge-length invalid_arg and a
     singular factorization in Banded.solve must not leak the sample
     (gnrlint span-balance). *)
  Fun.protect ~finally:(fun () -> Obs.Timer.stop obs_solve_time t0) @@ fun () ->
  let nx = nx t and nz = nz t in
  if Array.length sheet_charge <> nx - 2 then
    invalid_arg "Stack2d.solve: sheet_charge must have nx-2 entries";
  let rhs = Array.make t.n_unknowns 0. in
  (* Sheet charge: div(eps grad u) = rho discretizes to
     (sum c) u_c - sum c u_nb = -rho_cell. *)
  for i = 1 to nx - 2 do
    let k = t.unknown_of.(i).(t.sheet_row) in
    if k >= 0 then begin
      let dx = cell_size t.xs i in
      rhs.(k) <- rhs.(k) -. (sheet_charge.(i - 1) *. dx)
    end
  done;
  (* Dirichlet neighbour contributions. *)
  for i = 0 to nx - 1 do
    for j = 1 to nz - 2 do
      let k = t.unknown_of.(i).(j) in
      if k >= 0 then begin
        let bump neighbour cond =
          match neighbour with
          | None -> ()
          | Some (i', j') -> begin
            match t.dirichlet_of.(i').(j') with
            | Some d -> rhs.(k) <- rhs.(k) +. (cond *. dirichlet_value bc d)
            | None -> ()
          end
        in
        bump (if i > 0 then Some (i - 1, j) else None)
          (if i > 0 then t.cond_east.(i - 1).(j) else 0.);
        bump (if i < nx - 1 then Some (i + 1, j) else None)
          (if i < nx - 1 then t.cond_east.(i).(j) else 0.);
        bump (Some (i, j - 1)) t.cond_north.(i).(j - 1);
        bump (Some (i, j + 1)) t.cond_north.(i).(j)
      end
    done
  done;
  let x = Banded.solve t.matrix rhs in
  let u =
    Array.init nx (fun i ->
        Array.init nz (fun j ->
            match t.dirichlet_of.(i).(j) with
            | Some d -> dirichlet_value bc d
            | None ->
              let k = t.unknown_of.(i).(j) in
              if k >= 0 then x.(k) else 0.))
  in
  u

let plane_potential t u =
  let nx = nx t in
  Array.init (nx - 2) (fun i -> u.(i + 1).(t.sheet_row))
