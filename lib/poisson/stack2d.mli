(** 2D finite-volume Poisson solver for the double-gate GNRFET stack.

    Solves [div (eps grad u) = rho] on the rectangle spanned by the node
    coordinates [xs] (transport direction) × [zs] (vertical), where [u] is
    the local mid-gap energy in volts (u = -V, see DESIGN.md).  The top and
    bottom rows are the gate electrodes (Dirichlet).  The source/drain
    contacts on the left/right sides support two styles:

    - [Plane]: the whole side is a metal plane (Dirichlet on the full
      column) — a thick wrap-around contact;
    - [Point]: the metal is end-bonded to the channel, so only the node on
      the channel sheet row is pinned and the rest of the side column is a
      zero-flux (Neumann) boundary.  This lets the gate field thin the
      Schottky junction, which is how the fabricated devices of the paper
      switch.

    The mobile channel charge enters as a sheet on one interior z-row.
    The system matrix depends only on the grid, permittivity and contact
    style, so it is factorized once (banded LU) and reused for every
    right-hand side of the self-consistent loop. *)

type t

type contact_style = Plane | Point

type bc = { left : float; right : float; bottom : float; top : float }
(** Dirichlet values of [u] (volts) on the gates and contacts. *)

val make :
  ?contact_style:contact_style ->
  xs:float array ->
  zs:float array ->
  eps_r:(float -> float -> float) ->
  sheet_row:int ->
  unit ->
  t
(** [make ~xs ~zs ~eps_r ~sheet_row ()]: strictly increasing node
    coordinates (m); [eps_r x z] the relative permittivity at a point
    (sampled at cell faces); [sheet_row] the z-index (interior) of the row
    carrying the channel sheet charge.  Default style is [Point]. *)

val nx : t -> int

val nz : t -> int

val solve : t -> bc:bc -> sheet_charge:float array -> float array array
(** [solve t ~bc ~sheet_charge] where [sheet_charge.(i)] is the sheet
    density (C/m²) under interior x-node [i+1] (length [nx-2]); returns the
    full node potential [u.(i).(j)] in volts including boundary values.
    Instrumented: bumps [stack2d.solves] and the [stack2d.solve] timer in
    {!Obs.global} (a direct factorized solve, so there is no iteration
    metric; see docs/OBS.md). *)

val plane_potential : t -> float array array -> float array
(** Potential along the sheet row at the interior x nodes (length
    [nx - 2]): the channel mid-gap profile fed back to the NEGF solver. *)
