type t = {
  nx : int;
  ny : int;
  nz : int;
  spacing : float;
  matrix : Sparse.t;
}

let make ~nx ~ny ~nz ~spacing ~eps_r =
  if nx < 3 || ny < 3 || nz < 3 then invalid_arg "Poisson3d.make: grid too small";
  if spacing <= 0. then invalid_arg "Poisson3d.make: non-positive spacing";
  (* Interior unknowns only; Dirichlet boundaries eliminated. *)
  let mx = nx - 2 and my = ny - 2 and mz = nz - 2 in
  let idx i j k = (((i - 1) * my) + (j - 1)) * mz + (k - 1) in
  let builder = Sparse.Builder.create (mx * my * mz) in
  let eps i j k =
    (* Sample at node (i,j,k), in physical coordinates. *)
    Const.eps0
    *. eps_r (float_of_int i *. spacing) (float_of_int j *. spacing)
         (float_of_int k *. spacing)
  in
  let face_eps i j k i' j' k' =
    0.5 *. (eps i j k +. eps i' j' k')
  in
  for i = 1 to nx - 2 do
    for j = 1 to ny - 2 do
      for k = 1 to nz - 2 do
        let row = idx i j k in
        let neighbours =
          [
            (i - 1, j, k); (i + 1, j, k);
            (i, j - 1, k); (i, j + 1, k);
            (i, j, k - 1); (i, j, k + 1);
          ]
        in
        List.iter
          (fun (i', j', k') ->
            let c = face_eps i j k i' j' k' *. spacing in
            Sparse.Builder.add builder row row c;
            let interior =
              i' >= 1 && i' <= nx - 2 && j' >= 1 && j' <= ny - 2 && k' >= 1
              && k' <= nz - 2
            in
            if interior then Sparse.Builder.add builder row (idx i' j' k') (-.c))
          neighbours
      done
    done
  done;
  { nx; ny; nz; spacing; matrix = Sparse.Builder.finalize builder }

type charge = { ix : int; iy : int; iz : int; coulombs : float }

let obs_solves = Obs.Counter.make "poisson3d.solves"
let obs_cg_iters = Obs.Counter.make "poisson3d.cg_iterations"
let obs_solve_time = Obs.Timer.make "poisson3d.solve"
let obs_cg_retries = Obs.Counter.make "robust.poisson3d.cg_retries"
let obs_sor_fallbacks = Obs.Counter.make "robust.poisson3d.sor_fallbacks"

let solve ?(tol = 1e-10) ?(boundary = 0.) t ~charges =
  Obs.Counter.incr obs_solves;
  let t0 = Obs.Timer.start obs_solve_time in
  (* Stop on every path: the out-of-interior invalid_arg and a cg/SOR
     No_convergence escaping the recovery ladder must not leak the
     sample (gnrlint span-balance). *)
  Fun.protect ~finally:(fun () -> Obs.Timer.stop obs_solve_time t0) @@ fun () ->
  let { nx; ny; nz; spacing; matrix } = t in
  let mx = nx - 2 and my = ny - 2 and mz = nz - 2 in
  let idx i j k = (((i - 1) * my) + (j - 1)) * mz + (k - 1) in
  let rhs = Array.make (mx * my * mz) 0. in
  (* div(eps grad u) = rho  ->  (sum c) u_c - sum c u_nb = -q_cell. *)
  List.iter
    (fun { ix; iy; iz; coulombs } ->
      if ix < 1 || ix > nx - 2 || iy < 1 || iy > ny - 2 || iz < 1 || iz > nz - 2
      then invalid_arg "Poisson3d.solve: charge outside interior";
      rhs.(idx ix iy iz) <- rhs.(idx ix iy iz) -. coulombs)
    charges;
  (* Dirichlet boundary contributions (uniform boundary value). *)
  ignore spacing;
  if boundary <> 0. then begin
    (* Uniform-boundary case: each boundary-touching face contributes
       c*boundary; with uniform permittivity every face conductance equals
       diagonal/6 (exact), and for smoothly varying permittivity the error
       is second order. *)
    for i = 1 to nx - 2 do
      for j = 1 to ny - 2 do
        for k = 1 to nz - 2 do
          let row = idx i j k in
          let boundary_faces =
            (if i = 1 then 1 else 0)
            + (if i = nx - 2 then 1 else 0)
            + (if j = 1 then 1 else 0)
            + (if j = ny - 2 then 1 else 0)
            + (if k = 1 then 1 else 0)
            + if k = nz - 2 then 1 else 0
          in
          if boundary_faces > 0 then begin
            (* Approximate: use the local diagonal/6 as the face
               conductance; exact for uniform permittivity. *)
            let d = (Sparse.diagonal matrix).(row) in
            rhs.(row) <- rhs.(row) +. (boundary *. d /. 6. *. float_of_int boundary_faces)
          end
        done
      done
    done
  end;
  (* Recovery ladder (docs/ROBUST.md): a cg failure is retried once (this
     sheds an injected transient fault; a genuine stagnation repeats
     deterministically) and then falls back to SOR, which trades speed for
     an iteration that cannot break down on this SPD operator.  Both
     solvers target the same tolerance, so the recovered potential is
     interchangeable with the fast path. *)
  let max_iter = 20 * mx * my * mz in
  let x, iters =
    match Sparse.cg ~tol ~max_iter matrix rhs with
    | result -> result
    | exception Sparse.No_convergence _ -> begin
      Obs.Counter.incr obs_cg_retries;
      match Sparse.cg ~tol ~max_iter matrix rhs with
      | result -> result
      | exception Sparse.No_convergence _ ->
        Obs.Counter.incr obs_sor_fallbacks;
        Sparse.sor ~tol ~max_iter:(2 * max_iter) matrix rhs
    end
  in
  Obs.Counter.add obs_cg_iters iters;
  let u =
    Array.init nx (fun i ->
        Array.init ny (fun j ->
            Array.init nz (fun k ->
                if i = 0 || i = nx - 1 || j = 0 || j = ny - 1 || k = 0
                   || k = nz - 1
                then boundary
                else x.(idx i j k))))
  in
  u

let line_profile u ~iy ~iz = Array.map (fun plane -> plane.(iy).(iz)) u
