(* gnrlint — static analysis for the GNRFET tree.

   Thin CLI over Gnrlint_lib: rule registry and diagnostics in
   lib/diag.ml, source loading in lib/src.ml, per-file rules in
   lib/rules_file.ml and lib/rules_flow.ml, the whole-repo call-graph /
   capture-summary pass in lib/summary.ml with the interprocedural
   rules in lib/rules_global.ml, versioned baseline in lib/baseline.ml
   and the text/JSON/SARIF emitters in lib/report.ml.

   The same engine backs `gnrfet_cli lint`; see docs/LINT.md. *)

let () = exit (Gnrlint_lib.Engine.run_cli ~prog:"gnrlint" Sys.argv)
