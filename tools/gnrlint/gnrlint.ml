(* gnrlint — repo-specific AST linter for the GNRFET simulation stack.

   Parses every .ml/.mli under the directories given on the command line
   (default: lib bin test) with compiler-libs and enforces numerics- and
   domain-safety rules that ordinary type checking cannot express.  The
   NEGF/Poisson/MNA solvers are numerically fragile: a silent float `=`,
   an unclamped `exp`, or an ad-hoc `1e-300` pivot floor corrupts I-V
   tables long before any test notices.

   Diagnostics are printed as `file:line:col: [rule-id] message`.  The
   exit code is non-zero when violations are found that are neither
   suppressed inline (`(* gnrlint: allow <rule-id> *)` on the offending
   or preceding line; `allow-shared` is shorthand for the domain-capture
   rule) nor recorded in the checked-in baseline file.

   Rules (see docs/LINT.md for the full rationale):
     float-eq        structural =/<>/==/!=/compare against a float literal
     exp-log         unguarded exp/log in Fermi/NEGF paths
     magic-tol       inline denormal-range tolerances (<= 1e-250) outside Tol
     catch-all       `try ... with _ ->` swallowing every exception
     silent-swallow  a `try` handler whose whole body is `()`
     failwith-solver `failwith` in numerics/NEGF solver hot paths
     assert-false    `assert false` as a match-arm body
     domain-capture  Domain.spawn closures capturing mutable state
     missing-mli     lib/**/*.ml without a corresponding .mli
     ctx-labels      a ?parallel/?obs label pair without a ?ctx bundle *)

open Parsetree
open Ast_iterator

type diagnostic = {
  d_file : string;
  d_line : int;
  d_col : int;
  d_rule : string;
  d_msg : string;
}

let diag_to_string d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.d_file d.d_line d.d_col d.d_rule d.d_msg

let compare_diag a b =
  match compare a.d_file b.d_file with
  | 0 -> (
    match compare a.d_line b.d_line with
    | 0 -> (
      match compare a.d_col b.d_col with
      | 0 -> compare (a.d_rule, a.d_msg) (b.d_rule, b.d_msg)
      | c -> c)
    | c -> c)
  | c -> c

(* ------------------------------------------------------------------ *)
(* Per-file linting context                                           *)
(* ------------------------------------------------------------------ *)

type ctx = {
  file : string;  (* workspace-relative path used in diagnostics *)
  lines : string array;  (* raw source lines, for suppression comments *)
  diags : diagnostic list ref;
  (* Textually preceding `let f = fun ... ->` bindings, so that
     `Domain.spawn f` can be resolved to a closure body. *)
  local_funs : (string, expression) Hashtbl.t;
  (* Number of enclosing if/match constructs; used as a cheap "is this
     expression guarded?" signal for the exp-log rule. *)
  mutable guard_depth : int;
}

let in_dir dir file =
  let prefix = dir ^ Filename.dir_sep in
  String.length file >= String.length prefix
  && String.sub file 0 (String.length prefix) = prefix

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A diagnostic on line L is suppressed by a `gnrlint: allow <ids>` (or
   `allow-shared`) comment on line L or L-1. *)
let suppressed ctx ~line ~rule =
  let line_allows l =
    if l < 1 || l > Array.length ctx.lines then false
    else begin
      let text = ctx.lines.(l - 1) in
      contains_substring text "gnrlint:"
      && (contains_substring text ("allow " ^ rule)
          || contains_substring text ("allow-" ^ rule)
          || (rule = "domain-capture" && contains_substring text "allow-shared"))
    end
  in
  line_allows line || line_allows (line - 1)

let report ctx loc rule msg =
  let p = loc.Location.loc_start in
  let line = p.Lexing.pos_lnum and col = p.Lexing.pos_cnum - p.Lexing.pos_bol in
  if not (suppressed ctx ~line ~rule) then
    ctx.diags :=
      { d_file = ctx.file; d_line = line; d_col = col; d_rule = rule; d_msg = msg }
      :: !(ctx.diags)

(* ------------------------------------------------------------------ *)
(* Syntactic helpers                                                  *)
(* ------------------------------------------------------------------ *)

let float_literal_value s =
  match float_of_string_opt s with Some v -> v | None -> Float.nan

(* A float literal, possibly under unary +/-.  Comparisons against an
   exact 0.0 are exempt from the float-eq rule: zero is exactly
   representable and `x = 0.` / `factor <> 0.` are deliberate sentinel
   and skip-zero idioms throughout the numerics layer. *)
let rec nonzero_float_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float (s, _)) -> float_literal_value s <> 0.
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident ("~-." | "~+."); _ }; _ }, [ (_, arg) ]) ->
    nonzero_float_literal arg
  | _ -> false

let ident_name e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> Some n
  | _ -> None

(* Does the expression (an exp/log argument) syntactically contain a
   clamp — Float.max/min/clamp or a local min/max — or is it constant? *)
let arg_looks_clamped arg =
  let found = ref false in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_constant _ -> found := true
          | Pexp_ident { txt; _ } -> (
            match Longident.flatten txt with
            | [ "Float"; ("max" | "min" | "clamp") ]
            | [ ("max" | "min" | "clamp") ]
            | [ "Stdlib"; ("max" | "min") ] ->
              found := true
            | _ -> ())
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  it.expr it arg;
  !found

(* Names bound anywhere inside an expression (fun params, lets, match
   patterns).  Used to decide whether a mutation target is captured. *)
let bound_names expr =
  let names = Hashtbl.create 32 in
  let it =
    {
      default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> Hashtbl.replace names txt ()
          | _ -> ());
          default_iterator.pat self p);
    }
  in
  it.expr it expr;
  names

(* Conservative scan of a closure passed to Domain.spawn: find writes
   (`:=`, `a.(i) <- v`, record-field set, Hashtbl/Bytes mutation) whose
   target identifier is captured from the enclosing scope.  Atomic.*
   operations are exempt by construction (they never match the mutation
   shapes below). *)
let find_captured_mutation expr =
  let bound = bound_names expr in
  let found = ref None in
  let note name loc = if !found = None then found := Some (name, loc) in
  let check_target lhs loc =
    match ident_name lhs with
    | Some n when not (Hashtbl.mem bound n) -> note n loc
    | _ -> ()
  in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, lhs) :: _) -> (
            match Longident.flatten txt with
            | [ ":=" ]
            | [ ("Array" | "Bytes" | "Bigarray"); ("set" | "unsafe_set" | "fill" | "blit") ]
            | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear") ]
            | [ "Buffer"; ("add_string" | "add_char" | "clear" | "reset") ] ->
              check_target lhs e.pexp_loc
            | _ -> ())
          | Pexp_setfield (lhs, _, _) -> check_target lhs e.pexp_loc
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  it.expr it expr;
  !found

let rec strip_fun e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> strip_fun body
  | Pexp_newtype (_, body) -> strip_fun body
  | _ -> e

(* ------------------------------------------------------------------ *)
(* Rules                                                              *)
(* ------------------------------------------------------------------ *)

let numerics_hot_path file = in_dir "lib/numerics" file || in_dir "lib/negf" file
let fermi_negf_path file = in_dir "lib/physics" file || in_dir "lib/negf" file
let is_tol_module file =
  Filename.basename file = "tol.ml" || Filename.basename file = "tol.mli"

let check_float_eq ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, [ (_, a); (_, b) ])
    when (op = "=" || op = "<>" || op = "==" || op = "!=")
         && (nonzero_float_literal a || nonzero_float_literal b) ->
    report ctx e.pexp_loc "float-eq"
      (Printf.sprintf
         "structural `%s` against a nonzero float literal; compare with an explicit \
          tolerance (e.g. Float.abs (x -. y) <= tol) instead"
         op)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, a); (_, b) ])
    when (match Longident.flatten txt with
         | [ "compare" ] | [ "Stdlib"; "compare" ] -> true
         | _ -> false)
         && (nonzero_float_literal a || nonzero_float_literal b) ->
    report ctx e.pexp_loc "float-eq"
      "polymorphic `compare` on a nonzero float literal; use Float.compare with \
       explicit tolerance handling"
  | _ -> ()

let check_exp_log ctx e =
  if fermi_negf_path ctx.file then
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, arg) ]) -> (
      match Longident.flatten txt with
      | [ ("exp" | "log" | "log10" | "expm1" | "log1p") ]
      | [ "Float"; ("exp" | "log" | "log10" | "expm1" | "log1p") ] ->
        let fn = String.concat "." (Longident.flatten txt) in
        if ctx.guard_depth = 0 && not (arg_looks_clamped arg) then
          report ctx e.pexp_loc "exp-log"
            (Printf.sprintf
               "`%s` on an unguarded argument in a Fermi/NEGF path; clamp the exponent \
                (Float.max/Float.min) or branch on its range to avoid overflow/NaN"
               fn)
      | _ -> ())
    | _ -> ()

let check_magic_tol ctx e =
  if not (is_tol_module ctx.file) then
    match e.pexp_desc with
    | Pexp_constant (Pconst_float (s, _)) ->
      let v = float_literal_value s in
      if v > 0. && v <= 1e-250 then
        report ctx e.pexp_loc "magic-tol"
          (Printf.sprintf
             "inline denormal-range tolerance %s; route it through Numerics.Tol so pivot \
              and underflow floors stay consistent across solvers"
             s)
    | _ -> ()

let check_catch_all ctx e =
  match e.pexp_desc with
  | Pexp_try (_, cases) ->
    List.iter
      (fun c ->
        match (c.pc_lhs.ppat_desc, c.pc_guard) with
        | Ppat_any, None ->
          report ctx c.pc_lhs.ppat_loc "catch-all"
            "`try ... with _ ->` swallows every exception (including Out_of_memory and \
             Stack_overflow); match the specific exceptions you expect"
        | _ -> ())
      cases
  | _ -> ()

(* A handler that does literally nothing erases the failure: no counter,
   no quarantine, no log line — the class of bug that let corrupt table
   caches and failed store attempts vanish before PR 4.  Deliberate
   ignores should use `match ... with exception` (which reads as a
   decision, not a reflex) or bump an Obs counter. *)
let check_silent_swallow ctx e =
  match e.pexp_desc with
  | Pexp_try (_, cases) ->
    List.iter
      (fun c ->
        match c.pc_rhs.pexp_desc with
        | Pexp_construct ({ txt = Longident.Lident "()"; _ }, None) ->
          report ctx c.pc_rhs.pexp_loc "silent-swallow"
            "exception handler silently swallows the failure (body is `()`); count it \
             in an Obs counter, quarantine the artifact, or use `match ... with \
             exception` to mark the ignore as deliberate"
        | _ -> ())
      cases
  | _ -> ()

let check_failwith ctx e =
  if numerics_hot_path ctx.file then
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match Longident.flatten txt with
      | [ "failwith" ] | [ "Stdlib"; "failwith" ] ->
        report ctx e.pexp_loc "failwith-solver"
          "`failwith` in a solver hot path; prefer returning a typed `result` so SCF \
           drivers can recover without string matching"
      | _ -> ())
    | _ -> ()

let check_case_assert_false ctx c =
  match c.pc_rhs.pexp_desc with
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ } ->
    report ctx c.pc_rhs.pexp_loc "assert-false"
      "`assert false` as a match-arm body; make the invariant explicit (refactor the \
       type, or raise a named exception with context)"
  | _ -> ()

let check_domain_spawn ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, arg) :: _)
    when Longident.flatten txt = [ "Domain"; "spawn" ] -> (
    let resolved =
      match arg.pexp_desc with
      | Pexp_fun _ | Pexp_function _ -> Some arg
      | Pexp_ident { txt = Longident.Lident name; _ } -> Hashtbl.find_opt ctx.local_funs name
      | _ -> None
    in
    match resolved with
    | None ->
      report ctx e.pexp_loc "domain-capture"
        "cannot statically verify this Domain.spawn closure; pass a literal `fun` (or a \
         locally defined one) or annotate with (* gnrlint: allow-shared *)"
    | Some f -> (
      match find_captured_mutation (strip_fun f) with
      | None -> ()
      | Some (name, _) ->
        report ctx e.pexp_loc "domain-capture"
          (Printf.sprintf
             "Domain.spawn closure mutates captured `%s`; spawned closures may only \
              capture Atomic.t, immutable values, or index-disjoint arrays — if the \
              access is disjoint, annotate with (* gnrlint: allow-shared *)"
             name)))
  | _ -> ()

(* PR 5 made Ctx.t the canonical way to thread execution knobs: any
   entry point taking both ?parallel and ?obs must also take ?ctx so
   callers can pass one bundle instead of re-threading every label
   (docs/API.md).  Flags definitions and signatures that grow the label
   pair without the bundle; pre-Ctx wrappers live in the baseline. *)

let ctx_label_set = [ "parallel"; "obs" ]

let check_ctx_label_names ctx loc labels =
  let has l = List.mem l labels in
  if List.for_all has ctx_label_set && not (has "ctx") then
    report ctx loc "ctx-labels"
      "takes both ?parallel and ?obs but no ?ctx; accept ?ctx:Ctx.t and resolve \
       with Ctx.resolve so callers can pass one execution-context bundle \
       (docs/API.md)"

let check_ctx_labels_binding ctx vb =
  let rec labels acc e =
    match e.pexp_desc with
    | Pexp_fun (Optional l, _, _, body) -> labels (l :: acc) body
    | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) -> labels acc body
    | _ -> acc
  in
  match vb.pvb_pat.ppat_desc with
  | Ppat_var _ ->
    check_ctx_label_names ctx vb.pvb_pat.ppat_loc (labels [] vb.pvb_expr)
  | _ -> ()

let check_ctx_labels_value_description ctx vd =
  let rec labels acc t =
    match t.ptyp_desc with
    | Ptyp_arrow (Optional l, _, rest) -> labels (l :: acc) rest
    | Ptyp_arrow (_, _, rest) -> labels acc rest
    | _ -> acc
  in
  check_ctx_label_names ctx vd.pval_loc (labels [] vd.pval_type)

(* ------------------------------------------------------------------ *)
(* Iterator plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let make_iterator ctx =
  let expr self e =
    check_float_eq ctx e;
    check_exp_log ctx e;
    check_magic_tol ctx e;
    check_catch_all ctx e;
    check_silent_swallow ctx e;
    check_failwith ctx e;
    check_domain_spawn ctx e;
    match e.pexp_desc with
    | Pexp_ifthenelse (cond, then_, else_) ->
      self.expr self cond;
      ctx.guard_depth <- ctx.guard_depth + 1;
      self.expr self then_;
      Option.iter (self.expr self) else_;
      ctx.guard_depth <- ctx.guard_depth - 1
    | Pexp_match (scrut, cases) ->
      self.expr self scrut;
      ctx.guard_depth <- ctx.guard_depth + 1;
      List.iter (self.case self) cases;
      ctx.guard_depth <- ctx.guard_depth - 1
    | _ -> default_iterator.expr self e
  in
  let case self c =
    check_case_assert_false ctx c;
    default_iterator.case self c
  in
  let value_binding self vb =
    (match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } -> Hashtbl.replace ctx.local_funs txt vb.pvb_expr
    | _ -> ());
    check_ctx_labels_binding ctx vb;
    default_iterator.value_binding self vb
  in
  let value_description self vd =
    check_ctx_labels_value_description ctx vd;
    default_iterator.value_description self vd
  in
  { default_iterator with expr; case; value_binding; value_description }

(* ------------------------------------------------------------------ *)
(* File discovery and driving                                         *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let split_lines s = Array.of_list (String.split_on_char '\n' s)

(* Make a path workspace-relative: strip the --root prefix (the rule
   runs from _build/default/tools/gnrlint with --root ../..). *)
let normalize ~root path =
  let prefix = root ^ Filename.dir_sep in
  if root <> "." && String.length path > String.length prefix
     && String.sub path 0 (String.length prefix) = prefix
  then String.sub path (String.length prefix) (String.length path - String.length prefix)
  else path

let rec walk dir acc =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort compare entries;
  Array.fold_left
    (fun acc name ->
      let path = Filename.concat dir name in
      if Sys.is_directory path then
        if String.length name > 0 && (name.[0] = '.' || name.[0] = '_') then acc
        else walk path acc
      else if Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli" then
        path :: acc
      else acc)
    acc entries

let lint_file ~root diags path =
  let file = normalize ~root path in
  let source = read_file path in
  let ctx =
    {
      file;
      lines = split_lines source;
      diags;
      local_funs = Hashtbl.create 32;
      guard_depth = 0;
    }
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  let it = make_iterator ctx in
  try
    if Filename.check_suffix path ".mli" then it.signature it (Parse.interface lexbuf)
    else it.structure it (Parse.implementation lexbuf)
  with exn ->
    let loc =
      match exn with
      | Syntaxerr.Error err -> Syntaxerr.location_of_error err
      | _ -> Location.none
    in
    report ctx loc "parse-error" (Printf.sprintf "failed to parse: %s" (Printexc.to_string exn))

let check_missing_mli ~root diags files =
  let files = List.map (normalize ~root) files in
  let set = Hashtbl.create 128 in
  List.iter (fun f -> Hashtbl.replace set f ()) files;
  List.iter
    (fun f ->
      if in_dir "lib" f && Filename.check_suffix f ".ml" then begin
        let mli = f ^ "i" in
        if not (Hashtbl.mem set mli) then
          diags :=
            {
              d_file = f;
              d_line = 1;
              d_col = 0;
              d_rule = "missing-mli";
              d_msg =
                "library module has no interface file; add a .mli so the public surface \
                 (and its documentation) is explicit";
            }
            :: !diags
      end)
    files

(* ------------------------------------------------------------------ *)
(* Baseline                                                           *)
(* ------------------------------------------------------------------ *)

let load_baseline path =
  if not (Sys.file_exists path) then []
  else
    read_file path |> String.split_on_char '\n'
    |> List.filter_map (fun l ->
         let l = String.trim l in
         if l = "" || l.[0] = '#' then None else Some l)

let write_baseline path diags =
  let oc = open_out path in
  output_string oc
    "# gnrlint baseline — known pre-existing violations, one diagnostic per line.\n\
     # New code must lint clean; remove entries as the debt is paid down.\n\
     # Regenerate: dune exec tools/gnrlint/gnrlint.exe -- --baseline \
     tools/gnrlint/baseline.txt --update-baseline lib bin test\n";
  List.iter (fun d -> output_string oc (diag_to_string d ^ "\n")) diags;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Main                                                               *)
(* ------------------------------------------------------------------ *)

let () =
  let baseline_path = ref "" in
  let update_baseline = ref false in
  let root = ref "." in
  let dirs = ref [] in
  let spec =
    [
      ("--baseline", Arg.Set_string baseline_path, "FILE baseline of accepted violations");
      ("--update-baseline", Arg.Set update_baseline, " rewrite the baseline with current findings");
      ("--root", Arg.Set_string root, "DIR workspace root; stripped from reported paths");
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) "gnrlint [options] DIR...";
  if !update_baseline && !baseline_path = "" then begin
    prerr_endline "gnrlint: --update-baseline requires --baseline FILE";
    exit 2
  end;
  let dirs = match List.rev !dirs with [] -> [ "lib"; "bin"; "test" ] | ds -> ds in
  List.iter
    (fun d ->
      if not (Sys.file_exists d && Sys.is_directory d) then begin
        Printf.eprintf "gnrlint: no such directory: %s\n" d;
        exit 2
      end)
    dirs;
  let files = List.fold_left (fun acc d -> walk d acc) [] dirs |> List.sort compare in
  let diags = ref [] in
  List.iter (lint_file ~root:!root diags) files;
  check_missing_mli ~root:!root diags files;
  let diags = List.sort_uniq compare_diag !diags in
  if !update_baseline && !baseline_path <> "" then begin
    write_baseline !baseline_path diags;
    Printf.printf "gnrlint: wrote %d baseline entr%s to %s\n" (List.length diags)
      (if List.length diags = 1 then "y" else "ies")
      !baseline_path;
    exit 0
  end;
  let baseline = load_baseline !baseline_path in
  let in_baseline = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace in_baseline l ()) baseline;
  let fresh = List.filter (fun d -> not (Hashtbl.mem in_baseline (diag_to_string d))) diags in
  let current = Hashtbl.create 64 in
  List.iter (fun d -> Hashtbl.replace current (diag_to_string d) ()) diags;
  let stale = List.filter (fun l -> not (Hashtbl.mem current l)) baseline in
  List.iter (fun d -> print_endline (diag_to_string d)) fresh;
  if stale <> [] then begin
    Printf.eprintf
      "gnrlint: %d stale baseline entr%s (fixed or moved) — consider --update-baseline:\n"
      (List.length stale)
      (if List.length stale = 1 then "y" else "ies");
    List.iter (fun l -> Printf.eprintf "  %s\n" l) stale
  end;
  Printf.eprintf "gnrlint: %d file%s, %d finding%s (%d baselined, %d new)\n" (List.length files)
    (if List.length files = 1 then "" else "s")
    (List.length diags)
    (if List.length diags = 1 then "" else "s")
    (List.length diags - List.length fresh)
    (List.length fresh);
  exit (if fresh = [] then 0 else 1)
