(* Orchestration: discover + parse sources once, run the per-file
   rules, build the whole-repo summary, run the interprocedural rules,
   check against the versioned baseline and emit the requested format.

   Exit codes (run): 0 clean (stale-only baseline drift warns but
   passes), 1 un-baselined findings, 2 usage/IO error. *)

type format = Text | Json | Sarif

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | "sarif" -> Some Sarif
  | _ -> None

type config = {
  root : string;  (* prefix stripped from paths in diagnostics *)
  dirs : string list;  (* directories to lint *)
  exclude : string list;  (* directory basenames to skip *)
  baseline_path : string option;
  update_baseline : bool;
  format : format;
  output : string option;  (* write report here instead of stdout *)
  summary : bool;  (* print the per-rule summary table (to stderr) *)
}

let default_config =
  {
    root = ".";
    dirs = [];
    exclude = [ "lint_fixtures" ];
    baseline_path = None;
    update_baseline = false;
    format = Text;
    output = None;
    summary = false;
  }

(* Run every rule over [dirs]; returns the suppression-filtered,
   sorted, deduplicated diagnostics.  Pure with respect to the
   filesystem apart from reading sources. *)
let analyze config =
  let paths = Src.discover ~exclude:config.exclude config.dirs in
  let files = List.map (Src.load ~root:config.root) paths in
  let diags = ref [] in
  let emit (file : Src.file) loc rule msg =
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    let col = loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol in
    (* Location.none has line 0; clamp so suppression lookup is sane. *)
    let line = max line 1 in
    if not (Src.suppressed file ~line ~rule) then
      diags :=
        { Diag.d_file = file.Src.path; d_line = line; d_col = max col 0; d_rule = rule; d_msg = msg }
        :: !diags
  in
  (* Per-file rules *)
  List.iter
    (fun (file : Src.file) ->
      Rules_file.lint ~report:(fun loc rule msg -> emit file loc rule msg) file;
      Rules_flow.lint ~report:(fun loc rule msg -> emit file loc rule msg) file)
    files;
  Rules_file.check_missing_mli
    ~report_file:(fun path rule msg ->
      diags := { Diag.d_file = path; d_line = 1; d_col = 0; d_rule = rule; d_msg = msg } :: !diags)
    files;
  (* Whole-repo pass *)
  let repo = Summary.build files in
  Rules_global.check_domain_race ~report:emit files repo;
  Rules_global.check_nondet_path ~report:emit files repo;
  List.sort_uniq Diag.compare_diag !diags

let load_baseline config =
  match config.baseline_path with Some p -> Baseline.load p | None -> []

let output_report config text =
  match config.output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc

(* Full run for CLI use: returns the exit code. *)
let run config =
  if config.dirs = [] then begin
    prerr_endline "gnrlint: no directories to lint";
    2
  end
  else begin
    let diags = analyze config in
    if config.update_baseline then begin
      match config.baseline_path with
      | None ->
        prerr_endline "gnrlint: --update-baseline requires --baseline";
        2
      | Some path ->
        Baseline.write path diags;
        Printf.eprintf "gnrlint: baseline refreshed with %d finding(s) -> %s\n"
          (List.length diags) path;
        0
    end
    else begin
      let check = Baseline.check (load_baseline config) diags in
      (match config.format with
      | Text -> output_report config (Report.text_report check)
      | Json -> output_report config (Report.json_report check)
      | Sarif -> output_report config (Report.sarif_report check));
      if config.summary then prerr_string (Report.summary_table check);
      let fresh = List.length check.Baseline.fresh in
      if fresh > 0 then begin
        Printf.eprintf "gnrlint: %d un-baselined finding(s)\n" fresh;
        1
      end
      else begin
        if check.Baseline.version_stale <> [] || check.Baseline.stale <> [] then
          Printf.eprintf "gnrlint: clean (%d baseline entr%s stale — refresh when convenient)\n"
            (List.length check.Baseline.version_stale + List.length check.Baseline.stale)
            (if List.length check.Baseline.version_stale + List.length check.Baseline.stale = 1
             then "y is"
             else "ies are")
        else Printf.eprintf "gnrlint: clean\n";
        0
      end
    end
  end

(* Shared argv parser so bin/gnrfet_cli's `lint` subcommand and the
   standalone tools/gnrlint executable accept identical flags. *)
let run_cli ?(prog = "gnrlint") argv =
  let config = ref default_config in
  let dirs = ref [] in
  let bad = ref None in
  let spec =
    [
      ( "--baseline",
        Arg.String (fun s -> config := { !config with baseline_path = Some s }),
        "FILE accepted-findings baseline (versioned; see docs/LINT.md)" );
      ( "--update-baseline",
        Arg.Unit (fun () -> config := { !config with update_baseline = true }),
        " rewrite the baseline with the current findings" );
      ( "--root",
        Arg.String (fun s -> config := { !config with root = s }),
        "DIR prefix stripped from reported paths" );
      ( "--format",
        Arg.String
          (fun s ->
            match format_of_string s with
            | Some f -> config := { !config with format = f }
            | None -> bad := Some (Printf.sprintf "unknown format %S (text|json|sarif)" s)),
        "FMT output format: text (default), json, sarif" );
      ( "--output",
        Arg.String (fun s -> config := { !config with output = Some s }),
        "FILE write the report to FILE instead of stdout" );
      ( "--summary",
        Arg.Unit (fun () -> config := { !config with summary = true }),
        " print a per-rule summary table to stderr" );
      ( "--exclude",
        Arg.String
          (fun s -> config := { !config with exclude = s :: !config.exclude }),
        "NAME skip directories with this basename (repeatable)" );
    ]
  in
  let usage = Printf.sprintf "usage: %s [options] DIR..." prog in
  (try Arg.parse_argv ~current:(ref 0) argv spec (fun d -> dirs := d :: !dirs) usage with
  | Arg.Bad msg -> bad := Some msg
  | Arg.Help msg ->
    print_string msg;
    exit 0);
  match !bad with
  | Some msg ->
    prerr_endline msg;
    2
  | None -> run { !config with dirs = List.rev !dirs }
