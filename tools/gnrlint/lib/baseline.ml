(* Versioned baseline: accepted findings, one rendered diagnostic per
   line (`file:line:col: [rule@vN] message`).  Matching is exact-string
   on the rendered form, so moving a finding or bumping a rule's
   version invalidates the entry.

   Classification of baseline entries against the current run:
   - matched: entry == a current finding (finding is accepted)
   - version-stale: same file/position/rule but the rule's version (or
     the message) changed — the rule was tightened; re-review, then
     --update-baseline
   - stale: nothing at that position any more — the finding was fixed;
     --update-baseline to drop the entry *)

type entry = { raw : string; e_file_pos_rule : string option }

(* "lib/x.ml:12:4: [float-eq@v1] msg" -> "lib/x.ml:12:4: [float-eq"
   (position + rule id, version and message stripped) for the
   version-stale comparison. *)
let file_pos_rule line =
  match String.index_opt line '[' with
  | None -> None
  | Some i -> (
    let rest = String.sub line i (String.length line - i) in
    match String.index_opt rest '@' with
    | None -> None
    | Some j -> Some (String.sub line 0 i ^ String.sub rest 0 j))

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line ->
        let t = String.trim line in
        if t = "" || String.length t >= 1 && t.[0] = '#' then go acc
        else go ({ raw = t; e_file_pos_rule = file_pos_rule t } :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  end

type check = {
  fresh : Diag.t list;  (* findings not in the baseline: these fail the run *)
  accepted : Diag.t list;
  version_stale : string list;  (* baseline lines outdated by a rule-version bump *)
  stale : string list;  (* baseline lines with no current finding at all *)
}

let check entries diags =
  let rendered = List.map (fun d -> (Diag.to_string d, d)) diags in
  let current = Hashtbl.create 64 in
  List.iter (fun (s, _) -> Hashtbl.replace current s ()) rendered;
  let current_fpr = Hashtbl.create 64 in
  List.iter
    (fun (s, _) ->
      match file_pos_rule s with Some k -> Hashtbl.replace current_fpr k () | None -> ())
    rendered;
  let baseline_set = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace baseline_set e.raw ()) entries;
  let fresh, accepted =
    List.partition (fun (s, _) -> not (Hashtbl.mem baseline_set s)) rendered
  in
  let version_stale, stale =
    List.filter (fun e -> not (Hashtbl.mem current e.raw)) entries
    |> List.partition (fun e ->
           match e.e_file_pos_rule with
           | Some k -> Hashtbl.mem current_fpr k
           | None -> false)
  in
  {
    fresh = List.map snd fresh;
    accepted = List.map snd accepted;
    version_stale = List.map (fun e -> e.raw) version_stale;
    stale = List.map (fun e -> e.raw) stale;
  }

let write path diags =
  let oc = open_out path in
  output_string oc
    "# gnrlint baseline — accepted findings, one per line.\n\
     # Format: file:line:col: [rule@vN] message (vN = rule version the\n\
     # entry was accepted under; bumping a rule's version invalidates\n\
     # only that rule's entries).  Regenerate with --update-baseline.\n";
  List.iter
    (fun d ->
      output_string oc (Diag.to_string d);
      output_char oc '\n')
    diags;
  close_out oc
