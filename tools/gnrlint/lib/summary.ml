(* Whole-repo model: one pass over every parsed .ml builds, per
   top-level binding, a summary of (a) the identifiers it mentions
   (the call-graph edges — mentioning a function is enough to create an
   edge, so closures passed by name are covered), (b) its writes to
   top-level mutable cells, (c) its order/clock-dependent operations,
   and (d) the parallel entry points it contains (closures handed to
   Parallel.map_reduce / parallel_for / Parallel.map / Domain.spawn).

   Known approximations (docs/LINT.md):
   - A file's module name is its capitalized basename; libraries are
     unwrapped in this repo, so that matches how modules reference each
     other.  Nested `module X = struct` extends the path; `module X = Y`
     aliases are resolved, functors and `include` are not.
   - Unqualified names resolve against enclosing module paths only —
     `open`ed modules are invisible, so cross-module edges need the
     qualified `M.f` form (the repo's prevailing style).
   - A write is "guarded" if its enclosing top-level binding anywhere
     takes a Mutex (`Mutex.lock`/`Mutex.protect`) or touches
     Domain.DLS; the analysis does not prove the lock covers the
     write. *)

open Parsetree
open Ast_iterator

type write = {
  w_target : string;  (* raw token: `cache`, `pool`, `A.tbl` *)
  w_op : string;  (* `:=`, `Hashtbl.replace`, `<- (field set)` ... *)
  w_loc : Location.t;
}

type nondet = { nd_op : string; nd_loc : Location.t }

type pcall = {
  p_api : string;  (* "Parallel.map_reduce", "Domain.spawn", ... *)
  p_loc : Location.t;
  p_callees : string list;  (* raw tokens mentioned inside closure args *)
  p_writes : write list;  (* writes directly inside closure args *)
}

type func = {
  f_name : string;  (* qualified: "Scf.solve", "Sparse.Builder.finalize" *)
  f_path : string list;  (* enclosing module path, e.g. ["Sparse"; "Builder"] *)
  f_file : string;
  f_loc : Location.t;
  f_mentions : (string, Location.t) Hashtbl.t;  (* raw ident tokens *)
  f_writes : write list;
  f_nondet : nondet list;
  f_pcalls : pcall list;
  f_guarded : bool;  (* binding takes a Mutex / uses DLS somewhere *)
}

type cell = {
  c_name : string;  (* qualified *)
  c_kind : string;  (* "ref", "Hashtbl", "array", "record", ... *)
  c_atomic : bool;
  c_file : string;
  c_loc : Location.t;
}

type repo = {
  funcs : (string, func) Hashtbl.t;
  cells : (string, cell) Hashtbl.t;
  aliases : (string, string) Hashtbl.t;  (* "Robust.Error" -> "Robust_error" *)
}

let drop_stdlib = function "Stdlib" :: rest -> rest | l -> l
let token_of lid = String.concat "." (drop_stdlib (Longident.flatten lid))

let module_of_file path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* ------------------------------------------------------------------ *)
(* Expression classification helpers                                   *)
(* ------------------------------------------------------------------ *)

let rec strip e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> strip e
  | _ -> e

(* Top-level mutable cell constructors. *)
let cell_kind e =
  match (strip e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    match drop_stdlib (Longident.flatten txt) with
    | [ "ref" ] -> Some ("ref", false)
    | [ "Hashtbl"; "create" ] -> Some ("Hashtbl", false)
    | [ "Array"; ("make" | "create" | "init" | "create_float" | "make_matrix") ] ->
      Some ("array", false)
    | [ "Bytes"; ("make" | "create") ] -> Some ("bytes", false)
    | [ "Buffer"; "create" ] -> Some ("Buffer", false)
    | [ "Queue"; "create" ] -> Some ("Queue", false)
    | [ "Stack"; "create" ] -> Some ("Stack", false)
    | [ "Atomic"; "make" ] -> Some ("Atomic", true)
    | [ "Mutex"; "create" ] | [ "Condition"; "create" ] -> None
    | _ -> None)
  | Pexp_record _ -> Some ("record", false)  (* possibly-mutable fields *)
  | Pexp_array _ -> Some ("array", false)
  | _ -> None

(* The mutated container of a write operation, as a raw token.  Field
   paths collapse to their base identifier: `pool.tasks` is a write to
   the top-level record `pool`. *)
let rec target_token e =
  match (strip e).pexp_desc with
  | Pexp_ident { txt; _ } -> Some (token_of txt)
  | Pexp_field (b, _) -> target_token b
  | _ -> None

(* op name -> index of the mutated-container argument *)
let write_op flat =
  match flat with
  | [ ":=" ] -> Some (":=", 0)
  | [ ("incr" | "decr") as f ] -> Some (f, 0)
  | [ "Array"; (("set" | "unsafe_set" | "fill" | "blit") as f) ] -> Some ("Array." ^ f, 0)
  | [ "Bytes"; (("set" | "unsafe_set" | "fill" | "blit") as f) ] -> Some ("Bytes." ^ f, 0)
  | [ "Hashtbl"; (("add" | "replace" | "remove" | "reset" | "clear") as f) ] ->
    Some ("Hashtbl." ^ f, 0)
  | [ "Buffer"; (("add_string" | "add_char" | "add_bytes" | "clear" | "reset") as f) ] ->
    Some ("Buffer." ^ f, 0)
  | [ "Queue"; (("pop" | "take" | "clear") as f) ] -> Some ("Queue." ^ f, 0)
  | [ "Queue"; (("push" | "add") as f) ] -> Some ("Queue." ^ f, 1)
  | [ "Stack"; (("pop" | "clear") as f) ] -> Some ("Stack." ^ f, 0)
  | [ "Stack"; "push" ] -> Some ("Stack.push", 1)
  | _ -> None

let nondet_op flat =
  match flat with
  | [ "Hashtbl"; (("iter" | "fold") as f) ] ->
    Some ("Hashtbl." ^ f, "iteration order is unspecified; iterate sorted keys or use an ordered structure")
  | "Random" :: second :: _ when second <> "State" && second <> "split" ->
    Some
      ( "Random." ^ second,
        "global-state RNG; use Random.State (or Numerics.Rng) with an explicit seed" )
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] ->
    Some (String.concat "." flat, "wall clock read; route timing through Obs instead")
  | _ -> None

let parallel_api flat =
  match flat with
  | [ "Parallel"; "map_reduce" ] | [ "map_reduce" ] -> Some "Parallel.map_reduce"
  | [ "Parallel"; "parallel_for" ] | [ "parallel_for" ] -> Some "Parallel.parallel_for"
  | [ "Parallel"; "map" ] -> Some "Parallel.map"
  | [ "Domain"; "spawn" ] -> Some "Domain.spawn"
  | _ -> None

(* Names bound anywhere inside an expression (fun params, lets, match
   patterns): writes to these are local, not top-level-cell writes. *)
let bound_names expr =
  let names = Hashtbl.create 32 in
  let it =
    {
      default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> Hashtbl.replace names txt ()
          | _ -> ());
          default_iterator.pat self p);
    }
  in
  it.expr it expr;
  names

(* ------------------------------------------------------------------ *)
(* Per-binding summary extraction                                      *)
(* ------------------------------------------------------------------ *)

(* Collect mentions/writes/nondet inside [expr].  [bound] filters write
   targets that are locally bound.  When [into_pcalls] is false the
   collector is being used on a closure argument and must not recurse
   into nested parallel calls (they are separate entries). *)
let collect_into ~bound ~mentions ~writes ~nondets ~pcalls expr =
  let add_write ~into args op_and_idx loc =
    match op_and_idx with
    | None -> ()
    | Some (op, idx) -> (
      match List.nth_opt args idx with
      | Some (_, arg) -> (
        match target_token arg with
        | Some t when not (Hashtbl.mem bound t) ->
          into := { w_target = t; w_op = op; w_loc = loc } :: !into
        | _ -> ())
      | None -> ())
  in
  (* Mentions and writes directly inside a closure literal handed to a
     parallel API — these are what the parallel body runs, so they seed
     the race reachability from the pcall itself. *)
  let scan_closure arg =
    let sub_mentions = Hashtbl.create 16 in
    let sub_writes = ref [] in
    let it =
      {
        default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; _ } ->
              let t = token_of txt in
              if not (Hashtbl.mem sub_mentions t) then Hashtbl.replace sub_mentions t e.pexp_loc
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
              let flat = drop_stdlib (Longident.flatten txt) in
              add_write ~into:sub_writes args (write_op flat) e.pexp_loc
            | Pexp_setfield (lhs, _, _) -> (
              match target_token lhs with
              | Some t when not (Hashtbl.mem bound t) ->
                sub_writes :=
                  { w_target = t; w_op = "<- (field set)"; w_loc = e.pexp_loc } :: !sub_writes
              | _ -> ())
            | _ -> ());
            default_iterator.expr self e);
      }
    in
    it.expr it arg;
    ( Hashtbl.fold (fun k _ acc -> k :: acc) sub_mentions [] |> List.sort compare,
      List.rev !sub_writes )
  in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
            let t = token_of txt in
            if not (Hashtbl.mem mentions t) then Hashtbl.replace mentions t e.pexp_loc;
            (match nondet_op (drop_stdlib (Longident.flatten txt)) with
            | Some (op, why) ->
              nondets := { nd_op = op ^ " (" ^ why ^ ")"; nd_loc = e.pexp_loc } :: !nondets
            | None -> ())
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
            let flat = drop_stdlib (Longident.flatten txt) in
            add_write ~into:writes args (write_op flat) e.pexp_loc;
            match parallel_api flat with
            | Some api ->
              let callees = ref [] and cl_writes = ref [] in
              List.iter
                (fun (_, arg) ->
                  match (strip arg).pexp_desc with
                  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ ->
                    let ms, ws = scan_closure arg in
                    callees := ms @ !callees;
                    cl_writes := ws @ !cl_writes
                  | Pexp_ident { txt; _ } -> callees := token_of txt :: !callees
                  (* partial application: Parallel.map (f x) arr *)
                  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
                    callees := token_of txt :: !callees
                  | _ -> ())
                args;
              pcalls :=
                {
                  p_api = api;
                  p_loc = e.pexp_loc;
                  p_callees = List.sort_uniq compare !callees;
                  p_writes = !cl_writes;
                }
                :: !pcalls
            | None -> ())
          | Pexp_setfield (lhs, _, _) -> (
            match target_token lhs with
            | Some t when not (Hashtbl.mem bound t) ->
              writes := { w_target = t; w_op = "<- (field set)"; w_loc = e.pexp_loc } :: !writes
            | _ -> ())
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  it.expr it expr

let guard_tokens = [ "Mutex.lock"; "Mutex.protect"; "Domain.DLS" ]

let summarize_binding ~file ~path ~name ~loc expr =
  let bound = bound_names expr in
  let mentions = Hashtbl.create 64 in
  let writes = ref [] and nondets = ref [] and pcalls = ref [] in
  collect_into ~bound ~mentions ~writes ~nondets ~pcalls expr;
  let guarded =
    Hashtbl.fold
      (fun t _ acc ->
        acc
        || List.exists
             (fun g ->
               t = g
               || String.length t > String.length g
                  && String.sub t 0 (String.length g + 1) = g ^ ".")
             guard_tokens)
      mentions false
  in
  {
    f_name = String.concat "." (path @ [ name ]);
    f_path = path;
    f_file = file;
    f_loc = loc;
    f_mentions = mentions;
    f_writes = List.rev !writes;
    f_nondet = List.rev !nondets;
    f_pcalls = List.rev !pcalls;
    f_guarded = guarded;
  }

(* ------------------------------------------------------------------ *)
(* Repo construction                                                   *)
(* ------------------------------------------------------------------ *)

let build (files : Src.file list) =
  let repo =
    { funcs = Hashtbl.create 512; cells = Hashtbl.create 64; aliases = Hashtbl.create 16 }
  in
  let add_func f = if not (Hashtbl.mem repo.funcs f.f_name) then Hashtbl.replace repo.funcs f.f_name f in
  let rec structure ~file ~path str = List.iter (item ~file ~path) str
  and item ~file ~path si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = name; _ } ->
            (match cell_kind vb.pvb_expr with
            | Some (kind, atomic) ->
              let qname = String.concat "." (path @ [ name ]) in
              if not (Hashtbl.mem repo.cells qname) then
                Hashtbl.replace repo.cells qname
                  {
                    c_name = qname;
                    c_kind = kind;
                    c_atomic = atomic;
                    c_file = file;
                    c_loc = vb.pvb_pat.ppat_loc;
                  }
            | None -> ());
            add_func (summarize_binding ~file ~path ~name ~loc:vb.pvb_pat.ppat_loc vb.pvb_expr)
          | _ ->
            (* let () = ... and destructuring initializers: analyzed
               under a synthetic name so races in init code surface *)
            let line = vb.pvb_pat.ppat_loc.Location.loc_start.Lexing.pos_lnum in
            let name = Printf.sprintf "<init@%d>" line in
            add_func (summarize_binding ~file ~path ~name ~loc:vb.pvb_pat.ppat_loc vb.pvb_expr))
        vbs
    | Pstr_eval (e, _) ->
      let line = si.pstr_loc.Location.loc_start.Lexing.pos_lnum in
      add_func
        (summarize_binding ~file ~path ~name:(Printf.sprintf "<eval@%d>" line)
           ~loc:si.pstr_loc e)
    | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
      match pmb_expr.pmod_desc with
      | Pmod_structure s -> structure ~file ~path:(path @ [ name ]) s
      | Pmod_ident { txt; _ } ->
        Hashtbl.replace repo.aliases (String.concat "." (path @ [ name ])) (token_of txt)
      | _ -> ())
    | _ -> ()
  in
  List.iter
    (fun (f : Src.file) ->
      match f.Src.ast with
      | Src.Structure str when Filename.check_suffix f.Src.path ".ml" ->
        structure ~file:f.Src.path ~path:[ module_of_file f.Src.path ] str
      | _ -> ())
    files;
  repo

(* ------------------------------------------------------------------ *)
(* Name resolution                                                     *)
(* ------------------------------------------------------------------ *)

(* Resolve a raw token mentioned inside module [path] against a table of
   qualified names: innermost enclosing-module prefix first, then outer
   prefixes, then the bare token; module aliases are expanded on the
   token's first component at each prefix. *)
let resolve repo ~path token ~mem =
  let rec prefixes p = match p with [] -> [ [] ] | _ :: _ -> p :: prefixes (List.filteri (fun i _ -> i < List.length p - 1) p) in
  let expand_alias prefix token =
    match String.index_opt token '.' with
    | None -> None
    | Some i ->
      let head = String.sub token 0 i in
      let rest = String.sub token (i + 1) (String.length token - i - 1) in
      let key = String.concat "." (prefix @ [ head ]) in
      (match Hashtbl.find_opt repo.aliases key with
      | Some target -> Some (target ^ "." ^ rest)
      | None -> None)
  in
  let try_prefix prefix =
    let cand = String.concat "." (prefix @ [ token ]) in
    if mem cand then Some cand
    else
      match expand_alias prefix token with
      | Some rewritten when mem rewritten -> Some rewritten
      | _ -> None
  in
  List.find_map try_prefix (prefixes path)

let resolve_func repo ~path token = resolve repo ~path token ~mem:(Hashtbl.mem repo.funcs)
let resolve_cell repo ~path token = resolve repo ~path token ~mem:(Hashtbl.mem repo.cells)

(* Breadth-first reachable set from a list of qualified function names.
   Deterministic: the worklist is seeded in the given order and each
   function's mentions are visited in sorted order.  Returns the set
   with, for each reached function, the root it was first reached
   from. *)
let reachable repo roots =
  let visited : (string, string) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  List.iter
    (fun r ->
      if Hashtbl.mem repo.funcs r && not (Hashtbl.mem visited r) then begin
        Hashtbl.replace visited r r;
        Queue.push r queue
      end)
    roots;
  while not (Queue.is_empty queue) do
    let name = Queue.pop queue in
    let root = Hashtbl.find visited name in
    let f = Hashtbl.find repo.funcs name in
    let ms = Hashtbl.fold (fun t _ acc -> t :: acc) f.f_mentions [] |> List.sort compare in
    List.iter
      (fun token ->
        match resolve_func repo ~path:f.f_path token with
        | Some callee when not (Hashtbl.mem visited callee) ->
          Hashtbl.replace visited callee root;
          Queue.push callee queue
        | _ -> ())
      ms
  done;
  visited
