(* Whole-repo interprocedural rules built on Summary's call graph.

   domain-race — for every parallel entry point (a closure handed to
   Parallel.map_reduce / parallel_for / Parallel.map / Domain.spawn),
   walk the call graph reachable from the closure's body and flag every
   write to a top-level mutable cell that is neither Atomic nor inside a
   function that takes a Mutex / uses Domain.DLS.  Reported at the
   parallel call site, one diagnostic per (pcall, cell).

   nondet-path — from the deterministic surface (Observables.*,
   Scf.solve, Rgf.*, Iv_table.generate) walk the call graph and flag
   every order- or clock-dependent operation (Hashtbl.iter/fold, the
   global-state Random API, wall-clock reads) in a reached function.
   Reported at the operation site.  The Obs module itself is exempt:
   its snapshots sort by name and its timers read the wall clock by
   design (docs/LINT.md). *)

let det_root_names = [ "Scf.solve"; "Iv_table.generate" ]
let det_root_prefixes = [ "Observables."; "Rgf."; "Rgf_block." ]
let nondet_exempt_modules = [ "Obs" ]

let find_file files path = List.find_opt (fun (f : Src.file) -> f.Src.path = path) files

(* [report] here takes the file record so the engine can apply the
   inline-suppression scan at the report site. *)

let check_domain_race ~report files repo =
  let funcs_sorted =
    Hashtbl.fold (fun _ f acc -> f :: acc) repo.Summary.funcs []
    |> List.sort (fun a b -> compare a.Summary.f_name b.Summary.f_name)
  in
  List.iter
    (fun (f : Summary.func) ->
      List.iter
        (fun (p : Summary.pcall) ->
          (* Seed reachability with the callees mentioned inside the
             closure literal (plus ident args passed by name), resolved
             from the enclosing function's module path. *)
          let seeds =
            List.filter_map
              (fun tok -> Summary.resolve_func repo ~path:f.Summary.f_path tok)
              p.Summary.p_callees
          in
          let reached = Summary.reachable repo seeds in
          (* Unguarded writes: those directly in the closure body, plus
             those of every reached function that is not itself
             guarded. *)
          let offending = ref [] in
          let consider ~guarded ~path (w : Summary.write) =
            if not guarded then
              match Summary.resolve_cell repo ~path w.Summary.w_target with
              | Some cname ->
                let cell = Hashtbl.find repo.Summary.cells cname in
                if not cell.Summary.c_atomic then
                  offending := (cname, cell, w.Summary.w_op) :: !offending
              | None -> ()
          in
          List.iter (consider ~guarded:false ~path:f.Summary.f_path) p.Summary.p_writes;
          Hashtbl.iter
            (fun name _root ->
              let g = Hashtbl.find repo.Summary.funcs name in
              List.iter
                (consider ~guarded:g.Summary.f_guarded ~path:g.Summary.f_path)
                g.Summary.f_writes)
            reached;
          (* One diagnostic per distinct cell, deterministic order. *)
          let seen = Hashtbl.create 4 in
          !offending
          |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
          |> List.iter (fun (cname, (cell : Summary.cell), op) ->
                 if not (Hashtbl.mem seen cname) then begin
                   Hashtbl.replace seen cname ();
                   match find_file files f.Summary.f_file with
                   | Some file ->
                     report file p.Summary.p_loc "domain-race"
                       (Printf.sprintf
                          "closure passed to %s reaches a write (%s) to top-level %s \
                           `%s` (%s:%d) with no Mutex/Atomic/DLS guard; under multiple \
                           domains this is a data race — guard it, make it Atomic, or \
                           thread the state through the fold"
                          p.Summary.p_api op cell.Summary.c_kind cname
                          cell.Summary.c_file
                          cell.Summary.c_loc.Location.loc_start.Lexing.pos_lnum)
                   | None -> ()
                 end))
        f.Summary.f_pcalls)
    funcs_sorted

let is_det_root name =
  List.mem name det_root_names
  || List.exists
       (fun p ->
         String.length name > String.length p && String.sub name 0 (String.length p) = p)
       det_root_prefixes

let check_nondet_path ~report files repo =
  let roots =
    Hashtbl.fold (fun name _ acc -> if is_det_root name then name :: acc else acc)
      repo.Summary.funcs []
    |> List.sort compare
  in
  let reached = Summary.reachable repo roots in
  let entries = Hashtbl.fold (fun name root acc -> (name, root) :: acc) reached [] in
  List.iter
    (fun (name, root) ->
      let f = Hashtbl.find repo.Summary.funcs name in
      let exempt = match f.Summary.f_path with m :: _ -> List.mem m nondet_exempt_modules | [] -> false in
      if not exempt then
        List.iter
          (fun (nd : Summary.nondet) ->
            match find_file files f.Summary.f_file with
            | Some file ->
              report file nd.Summary.nd_loc "nondet-path"
                (Printf.sprintf
                   "%s inside `%s`, which is reachable from deterministic surface \
                    entry `%s`; results there must be bit-for-bit reproducible \
                    (docs/PERF.md)"
                   nd.Summary.nd_op f.Summary.f_name root)
            | None -> ())
          f.Summary.f_nondet)
    (List.sort compare entries)
