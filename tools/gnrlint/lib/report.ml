(* Output formats: text (default), JSON ("gnrfet-lint" schema v2) and
   SARIF 2.1.0.  JSON is emitted from a tiny value tree so the escaping
   logic lives in one place; no external JSON dependency. *)

type json =
  | S of string
  | I of int
  | B of bool
  | L of json list
  | O of (string * json) list

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_buffer b json =
  let rec go ind j =
    match j with
    | S s ->
      Buffer.add_char b '"';
      buf_escape b s;
      Buffer.add_char b '"'
    | I n -> Buffer.add_string b (string_of_int n)
    | B v -> Buffer.add_string b (string_of_bool v)
    | L [] -> Buffer.add_string b "[]"
    | L items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (String.make (ind + 2) ' ');
          go (ind + 2) item)
        items;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make ind ' ');
      Buffer.add_char b ']'
    | O [] -> Buffer.add_string b "{}"
    | O fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (String.make (ind + 2) ' ');
          Buffer.add_char b '"';
          buf_escape b k;
          Buffer.add_string b "\": ";
          go (ind + 2) v)
        fields;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make ind ' ');
      Buffer.add_char b '}'
  in
  go 0 json;
  Buffer.add_char b '\n'

let render json =
  let b = Buffer.create 4096 in
  to_buffer b json;
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let diag_json (d : Diag.t) ~accepted =
  O
    [
      ("file", S d.Diag.d_file);
      ("line", I d.Diag.d_line);
      ("col", I d.Diag.d_col);
      ("rule", S d.Diag.d_rule);
      ("ruleVersion", I (Diag.rule_version d.Diag.d_rule));
      ("severity", S (Diag.severity_to_string (Diag.rule_severity d.Diag.d_rule)));
      ("message", S d.Diag.d_msg);
      ("baselined", B accepted);
    ]

let json_report (check : Baseline.check) =
  render
    (O
       [
         ("schema", S "gnrfet-lint-v2");
         ( "rules",
           L
             (List.map
                (fun (r : Diag.rule) ->
                  O
                    [
                      ("id", S r.Diag.id);
                      ("version", I r.Diag.version);
                      ("severity", S (Diag.severity_to_string r.Diag.severity));
                      ("summary", S r.Diag.summary);
                    ])
                Diag.rules) );
         ("findings", L (List.map (diag_json ~accepted:false) check.Baseline.fresh));
         ("baselined", L (List.map (diag_json ~accepted:true) check.Baseline.accepted));
         ("versionStaleBaseline", L (List.map (fun s -> S s) check.Baseline.version_stale));
         ("staleBaseline", L (List.map (fun s -> S s) check.Baseline.stale));
       ])

(* ------------------------------------------------------------------ *)
(* SARIF 2.1.0.  Minimal but schema-conformant: version + runs, each
   run carrying tool.driver (name/rules) and results with ruleId,
   level, message.text and one physicalLocation.  Baseline-accepted
   findings are included with baselineState "unchanged" so viewers can
   filter them; fresh findings carry "new". *)

let sarif_level = function
  | Diag.Error -> "error"
  | Diag.Warning -> "warning"
  | Diag.Note -> "note"

let sarif_result (d : Diag.t) ~state =
  O
    [
      ("ruleId", S d.Diag.d_rule);
      ("level", S (sarif_level (Diag.rule_severity d.Diag.d_rule)));
      ("message", O [ ("text", S d.Diag.d_msg) ]);
      ( "locations",
        L
          [
            O
              [
                ( "physicalLocation",
                  O
                    [
                      ( "artifactLocation",
                        O [ ("uri", S d.Diag.d_file); ("uriBaseId", S "SRCROOT") ] );
                      ( "region",
                        O
                          [
                            ("startLine", I d.Diag.d_line);
                            (* Diag columns are 0-based (compiler-libs
                               convention); SARIF columns are 1-based. *)
                            ("startColumn", I (d.Diag.d_col + 1));
                          ] );
                    ] );
              ];
          ] );
      ("baselineState", S state);
    ]

let sarif_report (check : Baseline.check) =
  render
    (O
       [
         ( "$schema",
           S
             "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
         );
         ("version", S "2.1.0");
         ( "runs",
           L
             [
               O
                 [
                   ( "tool",
                     O
                       [
                         ( "driver",
                           O
                             [
                               ("name", S "gnrlint");
                               ("version", S "2.0.0");
                               ("informationUri", S "docs/LINT.md");
                               ( "rules",
                                 L
                                   (List.map
                                      (fun (r : Diag.rule) ->
                                        O
                                          [
                                            ("id", S r.Diag.id);
                                            ( "shortDescription",
                                              O [ ("text", S r.Diag.summary) ] );
                                            ( "fullDescription",
                                              O [ ("text", S r.Diag.help) ] );
                                            ( "defaultConfiguration",
                                              O
                                                [
                                                  ( "level",
                                                    S (sarif_level r.Diag.severity) );
                                                ] );
                                            ( "properties",
                                              O [ ("version", I r.Diag.version) ] );
                                          ])
                                      Diag.rules) );
                             ] );
                       ] );
                   ( "originalUriBaseIds",
                     O [ ("SRCROOT", O [ ("uri", S "file:///") ]) ] );
                   ( "results",
                     L
                       (List.map (sarif_result ~state:"new") check.Baseline.fresh
                       @ List.map (sarif_result ~state:"unchanged") check.Baseline.accepted)
                   );
                 ];
             ] );
       ])

(* ------------------------------------------------------------------ *)

let text_report (check : Baseline.check) =
  let b = Buffer.create 1024 in
  List.iter
    (fun d ->
      Buffer.add_string b (Diag.to_string d);
      Buffer.add_char b '\n')
    check.Baseline.fresh;
  if check.Baseline.version_stale <> [] then begin
    Buffer.add_string b
      "\ngnrlint: baseline entries outdated by a rule-version bump (re-review, then \
       --update-baseline):\n";
    List.iter (fun s -> Buffer.add_string b ("  " ^ s ^ "\n")) check.Baseline.version_stale
  end;
  if check.Baseline.stale <> [] then begin
    Buffer.add_string b
      "\ngnrlint: stale baseline entries (fixed findings; refresh with --update-baseline):\n";
    List.iter (fun s -> Buffer.add_string b ("  " ^ s ^ "\n")) check.Baseline.stale
  end;
  Buffer.contents b

(* Per-rule counts over fresh + accepted findings, for the CI summary
   table.  Rows are emitted for every registered rule with a nonzero
   count, in registry order. *)
let summary_table (check : Baseline.check) =
  let count rule l = List.length (List.filter (fun d -> d.Diag.d_rule = rule) l) in
  let rows =
    List.filter_map
      (fun (r : Diag.rule) ->
        let fresh = count r.Diag.id check.Baseline.fresh in
        let accepted = count r.Diag.id check.Baseline.accepted in
        if fresh = 0 && accepted = 0 then None
        else Some (r.Diag.id, Diag.severity_to_string r.Diag.severity, fresh, accepted))
      Diag.rules
  in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-16s %-8s %6s %10s\n" "rule" "sev" "fresh" "baselined");
  List.iter
    (fun (id, sev, fresh, accepted) ->
      Buffer.add_string b (Printf.sprintf "%-16s %-8s %6d %10d\n" id sev fresh accepted))
    rows;
  if rows = [] then Buffer.add_string b "(no findings)\n";
  Buffer.contents b
