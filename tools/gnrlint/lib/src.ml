(* Source loading: file discovery, parsing with compiler-libs, and the
   inline-suppression comment scan.  Every file is read and parsed once;
   the per-file rules and the whole-repo summary pass share the AST. *)

type ast =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature
  | Parse_failed of exn * Location.t

type file = {
  path : string;  (* workspace-relative, used in diagnostics *)
  lines : string array;
  ast : ast;
}

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let split_lines s = Array.of_list (String.split_on_char '\n' s)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let in_dir dir file =
  let prefix = dir ^ Filename.dir_sep in
  String.length file >= String.length prefix
  && String.sub file 0 (String.length prefix) = prefix

(* Make a path workspace-relative: strip the --root prefix (the dune
   rule runs from _build/default/tools/gnrlint with --root ../..). *)
let normalize ~root path =
  let prefix = root ^ Filename.dir_sep in
  if
    root <> "." && root <> ""
    && String.length path > String.length prefix
    && String.sub path 0 (String.length prefix) = prefix
  then String.sub path (String.length prefix) (String.length path - String.length prefix)
  else path

(* Directories whose basename is in [exclude] are skipped entirely —
   the lint-rule fixture corpus under test/lint_fixtures/ contains
   deliberate violations and must never count against the repo. *)
let rec walk ~exclude dir acc =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort compare entries;
  Array.fold_left
    (fun acc name ->
      let path = Filename.concat dir name in
      if Sys.is_directory path then
        if
          String.length name > 0
          && (name.[0] = '.' || name.[0] = '_' || List.mem name exclude)
        then acc
        else walk ~exclude path acc
      else if Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
      then path :: acc
      else acc)
    acc entries

let discover ~exclude dirs =
  List.fold_left (fun acc d -> walk ~exclude d acc) [] dirs |> List.sort compare

let load ~root raw_path =
  let path = normalize ~root raw_path in
  let source = read_file raw_path in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  let ast =
    try
      if Filename.check_suffix raw_path ".mli" then
        Signature (Parse.interface lexbuf)
      else Structure (Parse.implementation lexbuf)
    with exn ->
      let loc =
        match exn with
        | Syntaxerr.Error err -> Syntaxerr.location_of_error err
        | _ -> Location.none
      in
      Parse_failed (exn, loc)
  in
  { path; lines = split_lines source; ast }

(* A diagnostic on line L is suppressed by a `gnrlint: allow <ids>` (or
   the legacy `allow-shared`, kept as an alias for domain-race) comment
   on line L or L-1.  Suppressions are expected to carry a one-line
   justification in the same comment. *)
let suppressed file ~line ~rule =
  let line_allows l =
    if l < 1 || l > Array.length file.lines then false
    else begin
      let text = file.lines.(l - 1) in
      contains_substring text "gnrlint:"
      && (contains_substring text ("allow " ^ rule)
          || contains_substring text ("allow-" ^ rule)
          || (rule = "domain-race" && contains_substring text "allow-shared"))
    end
  in
  line_allows line || line_allows (line - 1)
