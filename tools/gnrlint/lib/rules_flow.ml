(* Flow-approximate per-function rules: lock-safety and span-balance.

   Both rules share one model: collect begin/end/raise events in source
   order inside each top-level binding, then walk them linearly keeping
   a pending set.  A raise-family call while a lock (timer) is pending
   means the unlock (stop) is not guaranteed on that exception path; a
   pending entry at the end of the function means it is never released
   at all.

   The linear walk is a deliberate approximation (docs/LINT.md): both
   arms of a conditional appear sequentially, so an unlock in either arm
   clears the pending entry (the pending count clamps at one per
   target), and only *syntactic* raise-family calls (`raise`,
   `raise_notrace`, `failwith`, `invalid_arg`, `assert`,
   `Robust_error.raise_`) count as exception sources — a callee that
   throws is invisible.  Two escapes are recognized as safe by
   construction and exempt their target everywhere in the function:
   `Mutex.protect` (never produces a lock event) and `Fun.protect`
   whose [~finally] contains the matching `Mutex.unlock` /
   `Obs.Timer.stop`. *)

open Parsetree
open Ast_iterator

type event =
  | Lock of string * Location.t
  | Unlock of string
  | Start of string * Location.t
  | Stop of string
  | Raise of Location.t

(* The syntactic handle a lock/timer is addressed through: an identifier
   path (`mu`, `t.mu`, `pool.mutex`) rendered as a dotted string.  Two
   textually identical handles are assumed to be the same object within
   one function. *)
let rec handle e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> String.concat "." (Longident.flatten txt)
  | Pexp_field (b, { txt; _ }) -> handle b ^ "." ^ String.concat "." (Longident.flatten txt)
  | Pexp_constraint (e, _) -> handle e
  | _ -> "<expr>"

let drop_stdlib = function "Stdlib" :: rest -> rest | l -> l

let raising_idents = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "failwithf"; "raise_" ]

type collector = {
  mutable events : event list;  (* reversed *)
  mutable protected_mutexes : string list;
  mutable protected_timers : string list;
}

let scan_finally c fin =
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, a) :: _) -> (
            match drop_stdlib (Longident.flatten txt) with
            | [ "Mutex"; "unlock" ] -> c.protected_mutexes <- handle a :: c.protected_mutexes
            | [ "Timer"; "stop" ] | [ "Obs"; "Timer"; "stop" ] | [ "Span"; "exit" ] ->
              c.protected_timers <- handle a :: c.protected_timers
            | _ -> ())
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  it.expr it fin

let collect expr =
  let c = { events = []; protected_mutexes = []; protected_timers = [] } in
  let push ev = c.events <- ev :: c.events in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
            (match drop_stdlib (Longident.flatten txt) with
            | [ "Fun"; "protect" ] ->
              List.iter
                (function
                  | Asttypes.Labelled "finally", fin -> scan_finally c fin
                  | _ -> ())
                args
            | _ -> ());
            match (drop_stdlib (Longident.flatten txt), args) with
            | [ "Mutex"; "lock" ], (_, a) :: _ -> push (Lock (handle a, e.pexp_loc))
            | [ "Mutex"; "unlock" ], (_, a) :: _ -> push (Unlock (handle a))
            | ([ "Timer"; "start" ] | [ "Obs"; "Timer"; "start" ] | [ "Span"; "enter" ]), (_, a) :: _
              ->
              push (Start (handle a, e.pexp_loc))
            | ([ "Timer"; "stop" ] | [ "Obs"; "Timer"; "stop" ] | [ "Span"; "exit" ]), (_, a) :: _
              ->
              push (Stop (handle a))
            | _ -> (
              match List.rev (Longident.flatten txt) with
              | last :: _ when List.mem last raising_idents -> push (Raise e.pexp_loc)
              | _ -> ()))
          | Pexp_assert _ -> push (Raise e.pexp_loc)
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  it.expr it expr;
  c

(* Walk the events for one begin/end pair family.  [what] names the
   construct in messages. *)
let scan ~report ~protected ~what ~advice events =
  let pending : (string, Location.t * bool ref) Hashtbl.t = Hashtbl.create 4 in
  let begin_ target loc =
    if (not (List.mem target protected)) && not (Hashtbl.mem pending target) then
      Hashtbl.replace pending target (loc, ref false)
  in
  let end_ target = Hashtbl.remove pending target in
  let raise_ rloc =
    Hashtbl.iter
      (fun target (bloc, reported) ->
        if not !reported then begin
          reported := true;
          report bloc
            (Printf.sprintf
               "%s `%s` is still held when the raise on line %d fires, so the %s is \
                skipped on that exception path; %s"
               (fst what) target rloc.Location.loc_start.Lexing.pos_lnum (snd what) advice)
        end)
      pending
  in
  List.iter
    (fun ev ->
      match ev with
      | Lock (t, l) | Start (t, l) -> begin_ t l
      | Unlock t | Stop t -> end_ t
      | Raise l -> raise_ l)
    events;
  Hashtbl.iter
    (fun target (bloc, reported) ->
      if not !reported then
        report bloc
          (Printf.sprintf "%s `%s` has no matching %s anywhere in this function; %s"
             (fst what) target (snd what) advice))
    pending

let lint_binding ~report_lock ~report_span expr =
  let c = collect expr in
  let events = List.rev c.events in
  let locks =
    List.filter (function Lock _ | Unlock _ | Raise _ -> true | _ -> false) events
  in
  let spans =
    List.filter (function Start _ | Stop _ | Raise _ -> true | _ -> false) events
  in
  scan ~report:report_lock ~protected:c.protected_mutexes
    ~what:("Mutex.lock on", "unlock")
    ~advice:
      "use Mutex.protect, or Fun.protect ~finally:(fun () -> Mutex.unlock m) around the \
       critical section"
    locks;
  scan ~report:report_span ~protected:c.protected_timers
    ~what:("timer/span begun on", "stop")
    ~advice:
      "use Obs.Span.run, or Fun.protect ~finally:(fun () -> Obs.Timer.stop t t0) so the \
       sample is recorded on every path"
    spans

let lint ~report (file : Src.file) =
  let report_lock loc msg = report loc "lock-safety" msg in
  let report_span loc msg = report loc "span-balance" msg in
  let rec structure str = List.iter item str
  and item si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter (fun vb -> lint_binding ~report_lock ~report_span vb.pvb_expr) vbs
    | Pstr_eval (e, _) -> lint_binding ~report_lock ~report_span e
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } -> structure s
    | _ -> ()
  in
  match file.Src.ast with Src.Structure str -> structure str | _ -> ()
