(* Per-file syntactic rules (the PR 1 rule set, minus domain-capture,
   which the whole-repo domain-race pass in Rules_global subsumes).

   [report loc rule msg] is supplied by the engine; it applies inline
   suppressions and accumulates the diagnostic. *)

open Parsetree
open Ast_iterator

type ctx = {
  file : string;
  report : Location.t -> string -> string -> unit;
  mutable guard_depth : int;
      (* enclosing if/match constructs; cheap "is this guarded?" signal
         for the exp-log rule *)
  mutable loop_depth : int;
      (* enclosing for/while constructs; the hot-alloc rule only fires
         inside a loop body *)
}

let float_literal_value s =
  match float_of_string_opt s with Some v -> v | None -> Float.nan

(* A float literal, possibly under unary +/-.  Comparisons against an
   exact 0.0 are exempt from the float-eq rule: zero is exactly
   representable and `x = 0.` / `factor <> 0.` are deliberate sentinel
   and skip-zero idioms throughout the numerics layer. *)
let rec nonzero_float_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float (s, _)) -> float_literal_value s <> 0.
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident ("~-." | "~+."); _ }; _ }, [ (_, arg) ]) ->
    nonzero_float_literal arg
  | _ -> false

(* Does the expression (an exp/log argument) syntactically contain a
   clamp — Float.max/min/clamp or a local min/max — or is it constant? *)
let arg_looks_clamped arg =
  let found = ref false in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_constant _ -> found := true
          | Pexp_ident { txt; _ } -> (
            match Longident.flatten txt with
            | [ "Float"; ("max" | "min" | "clamp") ]
            | [ ("max" | "min" | "clamp") ]
            | [ "Stdlib"; ("max" | "min") ] ->
              found := true
            | _ -> ())
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  it.expr it arg;
  !found

let numerics_hot_path file = Src.in_dir "lib/numerics" file || Src.in_dir "lib/negf" file
let fermi_negf_path file = Src.in_dir "lib/physics" file || Src.in_dir "lib/negf" file

let is_tol_module file =
  Filename.basename file = "tol.ml" || Filename.basename file = "tol.mli"

let check_float_eq ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, [ (_, a); (_, b) ])
    when (op = "=" || op = "<>" || op = "==" || op = "!=")
         && (nonzero_float_literal a || nonzero_float_literal b) ->
    ctx.report e.pexp_loc "float-eq"
      (Printf.sprintf
         "structural `%s` against a nonzero float literal; compare with an explicit \
          tolerance (e.g. Float.abs (x -. y) <= tol) instead"
         op)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, a); (_, b) ])
    when (match Longident.flatten txt with
         | [ "compare" ] | [ "Stdlib"; "compare" ] -> true
         | _ -> false)
         && (nonzero_float_literal a || nonzero_float_literal b) ->
    ctx.report e.pexp_loc "float-eq"
      "polymorphic `compare` on a nonzero float literal; use Float.compare with \
       explicit tolerance handling"
  | _ -> ()

let check_exp_log ctx e =
  if fermi_negf_path ctx.file then
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, arg) ]) -> (
      match Longident.flatten txt with
      | [ ("exp" | "log" | "log10" | "expm1" | "log1p") ]
      | [ "Float"; ("exp" | "log" | "log10" | "expm1" | "log1p") ] ->
        let fn = String.concat "." (Longident.flatten txt) in
        if ctx.guard_depth = 0 && not (arg_looks_clamped arg) then
          ctx.report e.pexp_loc "exp-log"
            (Printf.sprintf
               "`%s` on an unguarded argument in a Fermi/NEGF path; clamp the exponent \
                (Float.max/Float.min) or branch on its range to avoid overflow/NaN"
               fn)
      | _ -> ())
    | _ -> ()

let check_magic_tol ctx e =
  if not (is_tol_module ctx.file) then
    match e.pexp_desc with
    | Pexp_constant (Pconst_float (s, _)) ->
      let v = float_literal_value s in
      (* gnrlint: allow magic-tol — this literal IS the rule's threshold *)
      if v > 0. && v <= 1e-250 then
        ctx.report e.pexp_loc "magic-tol"
          (Printf.sprintf
             "inline denormal-range tolerance %s; route it through Numerics.Tol so pivot \
              and underflow floors stay consistent across solvers"
             s)
    | _ -> ()

let check_catch_all ctx e =
  match e.pexp_desc with
  | Pexp_try (_, cases) ->
    List.iter
      (fun c ->
        match (c.pc_lhs.ppat_desc, c.pc_guard) with
        | Ppat_any, None ->
          ctx.report c.pc_lhs.ppat_loc "catch-all"
            "`try ... with _ ->` swallows every exception (including Out_of_memory and \
             Stack_overflow); match the specific exceptions you expect"
        | _ -> ())
      cases
  | _ -> ()

let check_silent_swallow ctx e =
  match e.pexp_desc with
  | Pexp_try (_, cases) ->
    List.iter
      (fun c ->
        match c.pc_rhs.pexp_desc with
        | Pexp_construct ({ txt = Longident.Lident "()"; _ }, None) ->
          ctx.report c.pc_rhs.pexp_loc "silent-swallow"
            "exception handler silently swallows the failure (body is `()`); count it \
             in an Obs counter, quarantine the artifact, or use `match ... with \
             exception` to mark the ignore as deliberate"
        | _ -> ())
      cases
  | _ -> ()

let check_failwith ctx e =
  if numerics_hot_path ctx.file then
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match Longident.flatten txt with
      | [ "failwith" ] | [ "Stdlib"; "failwith" ] ->
        ctx.report e.pexp_loc "failwith-solver"
          "`failwith` in a solver hot path; prefer raising a typed exception \
           (Numerics_error.Singular/Stalled, Sparse.No_convergence) so SCF \
           drivers can recover without string matching"
      | _ -> ())
    | _ -> ()

(* PR 7 moved the block-RGF hot paths onto the Zdense in-place kernel
   layer; any allocating Cmatrix call left inside a loop in a NEGF
   module is either a regression or a deliberately-kept naive reference
   (which should carry an inline suppression).  The gate is a "negf"
   path segment so the fixture corpus under lint_fixtures/negf/ is
   covered by the same predicate as lib/negf. *)

let hot_alloc_fns = [ "mul"; "inverse"; "adjoint"; "add"; "sub" ]

let negf_segment file = List.mem "negf" (String.split_on_char '/' file)

let check_hot_alloc ctx e =
  if ctx.loop_depth > 0 && negf_segment ctx.file then
    match e.pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (Longident.Lident "Cmatrix", fn); _ }; _ },
          _ )
      when List.mem fn hot_alloc_fns ->
      ctx.report e.pexp_loc "hot-alloc"
        (Printf.sprintf
           "allocating `Cmatrix.%s` inside a loop in a NEGF hot path; run on the \
            Zdense workspace kernels (`gemm_into`/`solve_into`/..., docs/PERF.md) \
            or suppress where a naive reference oracle is kept on purpose"
           fn)
    | _ -> ()

let check_case_assert_false ctx c =
  match c.pc_rhs.pexp_desc with
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ } ->
    ctx.report c.pc_rhs.pexp_loc "assert-false"
      "`assert false` as a match-arm body; make the invariant explicit (refactor the \
       type, or raise a named exception with context)"
  | _ -> ()

(* PR 5 made Ctx.t the canonical way to thread execution knobs: any
   entry point taking both ?parallel and ?obs must also take ?ctx so
   callers can pass one bundle instead of re-threading every label
   (docs/API.md). *)

let ctx_label_set = [ "parallel"; "obs" ]

let check_ctx_label_names ctx loc labels =
  let has l = List.mem l labels in
  if List.for_all has ctx_label_set && not (has "ctx") then
    ctx.report loc "ctx-labels"
      "takes both ?parallel and ?obs but no ?ctx; accept ?ctx:Ctx.t and resolve \
       with Ctx.resolve so callers can pass one execution-context bundle \
       (docs/API.md)"

let check_ctx_labels_binding ctx vb =
  let rec labels acc e =
    match e.pexp_desc with
    | Pexp_fun (Optional l, _, _, body) -> labels (l :: acc) body
    | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) -> labels acc body
    | _ -> acc
  in
  match vb.pvb_pat.ppat_desc with
  | Ppat_var _ -> check_ctx_label_names ctx vb.pvb_pat.ppat_loc (labels [] vb.pvb_expr)
  | _ -> ()

let check_ctx_labels_value_description ctx vd =
  let rec labels acc t =
    match t.ptyp_desc with
    | Ptyp_arrow (Optional l, _, rest) -> labels (l :: acc) rest
    | Ptyp_arrow (_, _, rest) -> labels acc rest
    | _ -> acc
  in
  check_ctx_label_names ctx vd.pval_loc (labels [] vd.pval_type)

let make_iterator ctx =
  let expr self e =
    check_float_eq ctx e;
    check_exp_log ctx e;
    check_magic_tol ctx e;
    check_catch_all ctx e;
    check_silent_swallow ctx e;
    check_failwith ctx e;
    check_hot_alloc ctx e;
    match e.pexp_desc with
    | Pexp_for (_, lo, hi, _, body) ->
      self.expr self lo;
      self.expr self hi;
      ctx.loop_depth <- ctx.loop_depth + 1;
      self.expr self body;
      ctx.loop_depth <- ctx.loop_depth - 1
    | Pexp_while (cond, body) ->
      ctx.loop_depth <- ctx.loop_depth + 1;
      self.expr self cond;
      self.expr self body;
      ctx.loop_depth <- ctx.loop_depth - 1
    | Pexp_ifthenelse (cond, then_, else_) ->
      self.expr self cond;
      ctx.guard_depth <- ctx.guard_depth + 1;
      self.expr self then_;
      Option.iter (self.expr self) else_;
      ctx.guard_depth <- ctx.guard_depth - 1
    | Pexp_match (scrut, cases) ->
      self.expr self scrut;
      ctx.guard_depth <- ctx.guard_depth + 1;
      List.iter (self.case self) cases;
      ctx.guard_depth <- ctx.guard_depth - 1
    | _ -> default_iterator.expr self e
  in
  let case self c =
    check_case_assert_false ctx c;
    default_iterator.case self c
  in
  let value_binding self vb =
    check_ctx_labels_binding ctx vb;
    default_iterator.value_binding self vb
  in
  let value_description self vd =
    check_ctx_labels_value_description ctx vd;
    default_iterator.value_description self vd
  in
  { default_iterator with expr; case; value_binding; value_description }

let lint ~report (file : Src.file) =
  let ctx = { file = file.Src.path; report; guard_depth = 0; loop_depth = 0 } in
  let it = make_iterator ctx in
  match file.Src.ast with
  | Src.Structure str -> it.structure it str
  | Src.Signature sg -> it.signature it sg
  | Src.Parse_failed (exn, loc) ->
    report loc "parse-error" (Printf.sprintf "failed to parse: %s" (Printexc.to_string exn))

(* missing-mli is a file-set rule, not an AST rule. *)
let check_missing_mli ~report_file files =
  let set = Hashtbl.create 128 in
  List.iter (fun (f : Src.file) -> Hashtbl.replace set f.Src.path ()) files;
  List.iter
    (fun (f : Src.file) ->
      if Src.in_dir "lib" f.Src.path && Filename.check_suffix f.Src.path ".ml" then begin
        let mli = f.Src.path ^ "i" in
        if not (Hashtbl.mem set mli) then
          report_file f.Src.path "missing-mli"
            "library module has no interface file; add a .mli so the public surface \
             (and its documentation) is explicit"
      end)
    files
