(* Diagnostics and the rule registry.

   Every rule gnrlint can emit is declared here with an id, a version,
   a severity and its SARIF-facing descriptions.  The version is part of
   the baseline format: a baseline entry records the rule version it was
   accepted under, so tightening a rule (bumping its version) invalidates
   only that rule's entries instead of the whole baseline. *)

type severity = Error | Warning | Note

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

type rule = {
  id : string;
  version : int;
  severity : severity;
  summary : string;  (* one line; SARIF shortDescription *)
  help : string;  (* rationale; SARIF fullDescription *)
}

(* Versions start at 1.  Bump a rule's version when its matching logic
   is tightened enough that old accepted findings should be re-reviewed
   (docs/LINT.md, "Versioned baseline"). *)
let rules =
  [
    {
      id = "float-eq";
      version = 1;
      severity = Warning;
      summary = "structural equality against a nonzero float literal";
      help =
        "=/<>/==/!=/compare against a nonzero float literal; compare with an \
         explicit tolerance instead.  Exact 0.0 comparisons are exempt \
         (sentinel and skip-zero idioms).";
    };
    {
      id = "exp-log";
      version = 1;
      severity = Warning;
      summary = "unguarded exp/log in a Fermi/NEGF path";
      help =
        "exp/log on an unguarded argument in lib/physics or lib/negf can \
         overflow to inf or produce NaN; clamp the argument or branch on its \
         range.";
    };
    {
      id = "magic-tol";
      version = 1;
      severity = Warning;
      summary = "inline denormal-range tolerance outside Numerics.Tol";
      help =
        "Pivot and underflow floors (<= 1e-250) must be routed through \
         Numerics.Tol so they stay consistent across solvers.";
    };
    {
      id = "catch-all";
      version = 1;
      severity = Warning;
      summary = "`try ... with _ ->` swallows every exception";
      help =
        "A catch-all handler also swallows Out_of_memory and Stack_overflow; \
         match the specific exceptions you expect.";
    };
    {
      id = "silent-swallow";
      version = 1;
      severity = Warning;
      summary = "exception handler whose whole body is ()";
      help =
        "A handler that does literally nothing erases the failure: no \
         counter, no quarantine, no log line.  Count it, quarantine the \
         artifact, or use `match ... with exception` to mark the ignore as \
         deliberate.";
    };
    {
      id = "failwith-solver";
      version = 1;
      severity = Error;
      summary = "`failwith` in a numerics/NEGF solver hot path";
      help =
        "Recovery paths (escalation ladder, Newton retries, Monte-Carlo \
         quarantine) must not string-match Failure messages; raise a typed \
         exception (Numerics_error, Sparse.No_convergence) instead.";
    };
    {
      id = "assert-false";
      version = 1;
      severity = Warning;
      summary = "`assert false` as a match-arm body";
      help =
        "Make the invariant explicit: refactor the type, or raise a named \
         exception with context.";
    };
    {
      id = "missing-mli";
      version = 1;
      severity = Note;
      summary = "library module without an interface file";
      help =
        "Every lib/ module needs a .mli so the public surface (and its \
         documentation) is explicit.";
    };
    {
      id = "ctx-labels";
      version = 1;
      severity = Warning;
      summary = "?parallel/?obs label pair without a ?ctx bundle";
      help =
        "Entry points taking both ?parallel and ?obs must also take ?ctx \
         and resolve with Ctx.resolve so callers can pass one \
         execution-context bundle (docs/API.md).";
    };
    {
      id = "domain-race";
      version = 1;
      severity = Error;
      summary = "unguarded top-level mutable state reachable from a parallel closure";
      help =
        "A closure handed to Parallel.map_reduce / Parallel.parallel_for / \
         Parallel.map / Domain.spawn reaches (through the whole-repo call \
         graph) a function that mutates a top-level ref / Hashtbl / array / \
         mutable record without a Mutex/Atomic/DLS guard on the access \
         path.  Under more than one domain this is a data race: the \
         bit-for-bit determinism contract (docs/PERF.md) is void.";
    };
    {
      id = "nondet-path";
      version = 1;
      severity = Error;
      summary = "order- or clock-dependent operation on the bit-identity surface";
      help =
        "Hashtbl.iter/fold (unspecified order), the global-state Random API, \
         or wall-clock reads are reachable from the deterministic surface \
         (Observables.*, Scf.solve, Rgf.*, Iv_table.generate).  Results \
         produced there must be bit-for-bit reproducible at any worker \
         count; iterate sorted keys, use Random.State / Rng with explicit \
         seeding, or move timing into Obs.";
    };
    {
      id = "lock-safety";
      version = 1;
      severity = Error;
      summary = "Mutex.lock whose unlock is not guaranteed on all paths";
      help =
        "An exception raised while the lock is held (or a path that never \
         unlocks) deadlocks every later critical section.  Use \
         Mutex.protect, or Fun.protect ~finally:(fun () -> Mutex.unlock m).";
    };
    {
      id = "span-balance";
      version = 1;
      severity = Warning;
      summary = "obs timer/span begin without a guaranteed end";
      help =
        "An Obs.Timer.start (or manual span enter) whose stop is skipped on \
         an early raise loses the sample and, for spans, corrupts the \
         per-domain span stack.  Use Obs.Span.run, or Fun.protect \
         ~finally:(fun () -> Obs.Timer.stop t t0).";
    };
    {
      id = "hot-alloc";
      version = 1;
      severity = Warning;
      summary = "allocating Cmatrix call inside a NEGF loop";
      help =
        "Cmatrix.mul/inverse/adjoint/add/sub allocate a fresh matrix per \
         call; inside a per-energy or per-block loop in lib/negf this turns \
         the sweep into a GC benchmark.  Run on the Zdense workspace \
         kernels (gemm_into/solve_into/inverse_into/...) instead, or \
         suppress explicitly where a naive reference oracle is kept on \
         purpose.";
    };
    {
      id = "parse-error";
      version = 1;
      severity = Error;
      summary = "source file failed to parse";
      help = "gnrlint could not parse the file with compiler-libs.";
    };
  ]

let find_rule id = List.find_opt (fun r -> r.id = id) rules
let rule_version id = match find_rule id with Some r -> r.version | None -> 1

let rule_severity id =
  match find_rule id with Some r -> r.severity | None -> Warning

type t = {
  d_file : string;
  d_line : int;
  d_col : int;
  d_rule : string;
  d_msg : string;
}

(* The rendered form is the unit of baseline matching: file, position,
   versioned rule tag and message must all be identical. *)
let to_string d =
  Printf.sprintf "%s:%d:%d: [%s@v%d] %s" d.d_file d.d_line d.d_col d.d_rule
    (rule_version d.d_rule) d.d_msg

let compare_diag a b =
  match compare a.d_file b.d_file with
  | 0 -> (
    match compare a.d_line b.d_line with
    | 0 -> (
      match compare a.d_col b.d_col with
      | 0 -> compare (a.d_rule, a.d_msg) (b.d_rule, b.d_msg)
      | c -> c)
    | c -> c)
  | c -> c
