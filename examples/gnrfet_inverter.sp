* GNRFET inverter in the SPICE-dialect front-end
* run with:  dune exec bin/gnrfet_cli.exe -- simulate examples/gnrfet_inverter.sp --probe out
* models: nfet/pfet = nominal 4-GNR array at operating point B; cmos22n/p = 22nm node
VDD vdd 0 DC 0.4
VIN in 0 PULSE(0 0.4 10p 5p 5p 40p)
M1 out in 0 nfet
M2 out in vdd pfet
C1 out 0 10a
.tran 0.5p 100p
.end
